package fleetd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

// TestServerSnapshotEndpoint drives POST /v1/tenants/{id}/snapshot: the
// tenant's live sessions are captured at a gate without stopping the
// fleet, the sealed envelope decodes to exactly that tenant's sessions,
// and the failure surfaces (unknown tenant, per-spec monitor override)
// answer loudly.
func TestServerSnapshotEndpoint(t *testing.T) {
	cfg := testConfig()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := srv.Drain(drainCtx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	if code, _ := request(t, ts, "", http.MethodPost, "/v1/tenants/ghost/snapshot", ""); code != http.StatusNotFound {
		t.Fatalf("snapshot of unknown tenant = %d, want 404", code)
	}

	if code, _ := request(t, ts, "", http.MethodPut, "/v1/tenants/acme", `{"patients":[0,2],"scenarios":[0,1]}`); code != http.StatusCreated {
		t.Fatal("PUT acme failed")
	}
	waitFor(t, "acme sessions to admit", func() bool { return tenantLive(t, ts, "", "acme")() == 4 })

	code, body := request(t, ts, "", http.MethodPost, "/v1/tenants/acme/snapshot", "")
	if code != http.StatusOK {
		t.Fatalf("snapshot = %d (%s)", code, body)
	}
	var resp snapshotJSON
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sessions != 4 || resp.Bytes != len(resp.Snapshot) {
		t.Fatalf("snapshot response = %d sessions / %d bytes, want 4 sessions", resp.Sessions, resp.Bytes)
	}
	fs, err := fleet.DecodeFleetSnapshot(resp.Snapshot)
	if err != nil {
		t.Fatalf("returned envelope does not decode: %v", err)
	}
	if len(fs.Sessions) != 4 {
		t.Fatalf("decoded %d sessions, want 4", len(fs.Sessions))
	}
	for _, ss := range fs.Sessions {
		if ss.Group != "acme" {
			t.Fatalf("snapshot leaked a %q session", ss.Group)
		}
		if len(ss.State) == 0 {
			t.Fatalf("slot %d has empty component state", ss.Slot)
		}
	}

	// The capture is non-disruptive: the tenant is still fully live and a
	// second capture succeeds.
	if n := tenantLive(t, ts, "", "acme")(); n != 4 {
		t.Fatalf("tenant shrank to %d after snapshot", n)
	}
	if code, _ := request(t, ts, "", http.MethodPost, "/v1/tenants/acme/snapshot", ""); code != http.StatusOK {
		t.Fatal("second snapshot failed")
	}

	// A tenant with a per-spec monitor override cannot be serialized (the
	// restoring fleet could not rebuild the monitor); the error must
	// surface as a 5xx naming the monitor, not hang or succeed silently.
	if code, _ := request(t, ts, "", http.MethodPut, "/v1/tenants/zen", `{"patients":[1],"scenarios":[2],"monitor":"cawot"}`); code != http.StatusCreated {
		t.Fatal("PUT zen failed")
	}
	waitFor(t, "zen session to admit", func() bool { return tenantLive(t, ts, "", "zen")() == 1 })
	code, body = request(t, ts, "", http.MethodPost, "/v1/tenants/zen/snapshot", "")
	if code != http.StatusInternalServerError || !strings.Contains(string(body), "monitor") {
		t.Fatalf("override snapshot = %d (%s), want 500 naming the monitor override", code, body)
	}
}

// TestServerDrainToSnapshotRestore is the control-plane resume loop:
// drain a converged two-tenant server to a sealed snapshot, seed a
// fresh server from it, and check the registry, the live slot set
// (slot-exact — the reconciler must not churn a converged restore), and
// the telemetry stream all resume.
func TestServerDrainToSnapshotRestore(t *testing.T) {
	cfg := testConfig()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	if code, _ := request(t, ts, "", http.MethodPut, "/v1/tenants/acme", `{"patients":[0,2],"scenarios":[0,1],"mitigate":true}`); code != http.StatusCreated {
		t.Fatal("PUT acme failed")
	}
	if code, _ := request(t, ts, "", http.MethodPut, "/v1/tenants/zen", `{"patients":[1],"scenarios":[2,3]}`); code != http.StatusCreated {
		t.Fatal("PUT zen failed")
	}
	waitFor(t, "both tenants to admit", func() bool {
		return tenantLive(t, ts, "", "acme")() == 4 && tenantLive(t, ts, "", "zen")() == 2
	})

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, err := srv.DrainToSnapshot(drainCtx)
	if err != nil {
		t.Fatalf("DrainToSnapshot: %v", err)
	}
	ts.Close()
	if len(snap.Fleet.Sessions) != 6 || len(snap.Tenants) != 2 {
		t.Fatalf("snapshot holds %d sessions / %d tenants, want 6 / 2", len(snap.Fleet.Sessions), len(snap.Tenants))
	}
	if _, err := srv.DrainToSnapshot(drainCtx); err == nil {
		t.Fatal("second DrainToSnapshot should refuse")
	}

	// The sealed envelope round-trips through the decoder.
	sealed := snap.Encode()
	decoded, err := DecodeSnapshot(sealed)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if len(decoded.Tenants) != 2 || decoded.Seed != cfg.Seed || decoded.Platform != cfg.Platform.Name {
		t.Fatalf("decoded snapshot header = %+v", decoded)
	}
	if !decoded.Tenants["acme"].Mitigate || len(decoded.Tenants["zen"].Scenarios) != 2 {
		t.Fatalf("tenant specs did not survive the round trip: %+v", decoded.Tenants)
	}

	// Config guard: restoring under a different seed must fail loudly.
	badCfg := testConfig()
	badCfg.Seed = cfg.Seed + 1
	badCfg.Restore = decoded
	if _, err := New(badCfg); err == nil || !strings.Contains(err.Error(), "Seed") {
		t.Fatalf("restore with a different seed: err = %v, want a Seed mismatch", err)
	}

	// Restore into a fresh server: same config, snapshot attached.
	cfg2 := testConfig()
	cfg2.Restore = decoded
	srv2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer func() {
		drainCtx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel2()
		if err := srv2.Drain(drainCtx2); err != nil {
			t.Errorf("drain restored server: %v", err)
		}
	}()

	// The registry resumed: both tenants answer without a re-PUT.
	code, body := request(t, ts2, "", http.MethodGet, "/v1/tenants/acme", "")
	if code != http.StatusOK {
		t.Fatalf("restored GET acme = %d (%s)", code, body)
	}
	waitFor(t, "restored tenants to be live", func() bool {
		return tenantLive(t, ts2, "", "acme")() == 4 && tenantLive(t, ts2, "", "zen")() == 2
	})

	// Slot-exact resume: the restored live set carries the snapshot's
	// slot numbers. If the reconciler had evicted and re-admitted, the
	// fleet's never-reused slot numbering would have moved on.
	wantSlots := map[string][]int{}
	for _, ss := range decoded.Fleet.Sessions {
		wantSlots[ss.Group] = append(wantSlots[ss.Group], ss.Slot)
	}
	gotSlots := map[string][]int{}
	for _, ls := range srv2.adm.Live() {
		gotSlots[ls.Group] = append(gotSlots[ls.Group], ls.Slot)
	}
	for group, want := range wantSlots {
		got := gotSlots[group]
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("group %s: restored %d slots, want %d", group, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("group %s: restored slots %v, want %v (reconciler churned the restore)", group, got, want)
			}
		}
	}
	if n, _ := srv2.adm.Rejected(); n != 0 {
		t.Fatalf("restore produced %d rejections", n)
	}

	// The telemetry stream resumed: a subscriber sees tenant-tagged
	// events from the restored sessions.
	for _, ln := range streamLines(t, ts2, "", "acme", "", 3) {
		var ev struct {
			Group string `json:"group"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad restored telemetry line: %v", err)
		}
		if ev.Group != "acme" {
			t.Fatalf("restored stream crossed tenants: %q", ev.Group)
		}
	}
}

// TestDecodeSnapshotRejects pins the loud-failure surface of the
// control-plane decoder: a bare fleet snapshot, corrupt bytes, and
// truncations all error instead of producing a half-parsed registry.
func TestDecodeSnapshotRejects(t *testing.T) {
	bare := (&fleet.FleetSnapshot{NextSlot: 3}).Encode()
	if _, err := DecodeSnapshot(bare); err == nil {
		t.Fatal("bare fleet snapshot accepted as a control-plane snapshot")
	}

	good := (&ServerSnapshot{
		Platform:   "glucosym",
		Steps:      3,
		Seed:       7,
		SinkEpoch:  2,
		AdmitEvery: 2,
		Tenants:    map[string]TenantSpec{"acme": {Patients: []int{0}, Scenarios: []int{1}}},
		Fleet:      &fleet.FleetSnapshot{NextSlot: 1},
	}).Encode()
	if _, err := DecodeSnapshot(good); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	for n := 0; n < len(good); n += 11 {
		if _, err := DecodeSnapshot(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}
