package fleetd

import (
	"sort"
	"sync"
)

// registry is the desired-state store the reconciler converges the
// fleet toward. Every mutation bumps the generation and pings the
// change channel; the reconciler treats the ping as level-triggered
// (it recomputes the full diff, never replays individual changes).
type registry struct {
	mu      sync.Mutex
	tenants map[string]TenantSpec
	gen     int64
	change  chan struct{}
}

func newRegistry() *registry {
	return &registry{
		tenants: make(map[string]TenantSpec),
		change:  make(chan struct{}, 1),
	}
}

// ping nudges the reconciler without blocking (the channel is a
// level-trigger of capacity one).
func (r *registry) ping() {
	select {
	case r.change <- struct{}{}:
	default:
	}
}

// put upserts a tenant's desired state.
func (r *registry) put(id string, spec TenantSpec) {
	r.mu.Lock()
	r.tenants[id] = spec
	r.gen++
	r.mu.Unlock()
	r.ping()
}

// get returns a tenant's declared spec.
func (r *registry) get(id string) (TenantSpec, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec, ok := r.tenants[id]
	return spec, ok
}

// delete removes a tenant; the reconciler then evicts its sessions.
func (r *registry) delete(id string) bool {
	r.mu.Lock()
	_, ok := r.tenants[id]
	if ok {
		delete(r.tenants, id)
		r.gen++
	}
	r.mu.Unlock()
	if ok {
		r.ping()
	}
	return ok
}

// list snapshots the registry as (sorted IDs, spec lookup): the
// reconciler and status endpoints iterate tenants in this order so
// their operation sequences are reproducible.
func (r *registry) list() ([]string, map[string]TenantSpec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.tenants))
	specs := make(map[string]TenantSpec, len(r.tenants))
	for id, spec := range r.tenants { //fleetvet:nondeterministic map snapshot; ids are sorted before any caller iterates
		ids = append(ids, id)
		specs[id] = spec
	}
	sort.Strings(ids)
	return ids, specs
}

// desiredTotal sums declared sessions across tenants, optionally
// substituting one tenant's spec (capacity check for an incoming PUT).
func (r *registry) desiredTotal(override string, spec TenantSpec) int {
	ids, specs := r.list()
	total := spec.desired()
	for _, id := range ids {
		if id == override {
			continue
		}
		total += specs[id].desired()
	}
	return total
}
