package fleetd

import (
	"math"
	"sync"

	"repro/internal/fleet"
)

// defaultStreamBuffer is the per-subscriber event buffer when
// Config.StreamBuffer is zero.
const defaultStreamBuffer = 256

// subscriber is one telemetry stream client: a bounded channel of
// pre-encoded JSONL lines for a single tenant group.
type subscriber struct {
	group string
	ch    chan []byte
}

// fanout is the telemetry fan-out sink: it encodes each fleet event
// once and offers the line to every matching subscriber. Emit NEVER
// blocks — a subscriber whose buffer is full loses the line and the
// drop is counted — so a stalled HTTP client cannot stall the fleet's
// epoch merges or any other tenant's stream.
type fanout struct {
	mu      sync.Mutex
	subs    []*subscriber
	closed  bool
	drops   map[string]int64 // per-tenant drop totals
	dropped int64            // fleet-wide drop total
}

func newFanout() *fanout {
	return &fanout{drops: make(map[string]int64)}
}

// Emit implements fleet.Sink. It runs on the fleet's delivery
// goroutine: the non-blocking send below is the backpressure contract.
func (f *fanout) Emit(ev fleet.Event) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || len(f.subs) == 0 {
		return nil
	}
	line, err := fleet.EncodeJSON(ev)
	if err != nil {
		return err
	}
	for _, sub := range f.subs {
		if sub.group != ev.Group {
			continue
		}
		select {
		case sub.ch <- line:
		default:
			f.drops[sub.group]++
			f.dropped++
		}
	}
	return nil
}

// Flush implements fleet.Sink; buffering lives in the subscribers.
func (f *fanout) Flush() error { return nil }

// subscribe registers a stream for one tenant group; nil after close.
func (f *fanout) subscribe(group string, buffer int) *subscriber {
	if buffer <= 0 {
		buffer = defaultStreamBuffer
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	sub := &subscriber{group: group, ch: make(chan []byte, buffer)}
	f.subs = append(f.subs, sub)
	return sub
}

// unsubscribe detaches a stream; its channel is closed so a reader
// blocked on it unblocks.
func (f *fanout) unsubscribe(sub *subscriber) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, s := range f.subs {
		if s == sub {
			f.subs[i] = f.subs[len(f.subs)-1]
			f.subs = f.subs[:len(f.subs)-1]
			close(sub.ch)
			return
		}
	}
}

// closeAll ends every stream (server drain): subscribers' channels
// close, their HTTP handlers finish, and later Emits are no-ops.
func (f *fanout) closeAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for _, sub := range f.subs {
		close(sub.ch)
	}
	f.subs = nil
}

// droppedFor returns a tenant's lifetime stream-drop total.
func (f *fanout) droppedFor(group string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drops[group]
}

// droppedTotal returns the fleet-wide stream-drop total.
func (f *fanout) droppedTotal() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// alertTable routes robustness margins to one margin-floor-armed
// HistSink per tenant, backing GET /v1/tenants/{id}/alerts. Either
// knob (or both) may be armed: floor is a fixed margin threshold and
// pct is an adaptive percentile floor; NaN disarms a knob.
type alertTable struct {
	mu    sync.Mutex
	floor float64
	pct   float64
	hists map[string]*fleet.HistSink
}

// alertHist* fix the per-tenant histogram shape: the margin range
// covers the SCS rules' practical span.
const (
	alertHistLo   = -10
	alertHistHi   = 10
	alertHistBins = 40
)

func newAlertTable(floor, pct float64) *alertTable {
	return &alertTable{floor: floor, pct: pct, hists: make(map[string]*fleet.HistSink)}
}

// Emit implements fleet.Sink: tenant-tagged robustness events land in
// that tenant's histogram (created on first sight).
func (t *alertTable) Emit(ev fleet.Event) error {
	if ev.Kind != fleet.EventRobustness || ev.Group == "" {
		return nil
	}
	t.mu.Lock()
	h, ok := t.hists[ev.Group]
	if !ok {
		var err error
		if h, err = fleet.NewHistSink(alertHistLo, alertHistHi, alertHistBins); err != nil {
			t.mu.Unlock()
			return err
		}
		if !math.IsNaN(t.floor) {
			h.SetAlertFloor(t.floor, nil)
		}
		if !math.IsNaN(t.pct) {
			if err := h.SetAlertPercentile(t.pct, 0, nil); err != nil {
				t.mu.Unlock()
				return err
			}
		}
		t.hists[ev.Group] = h
	}
	t.mu.Unlock()
	return h.Emit(ev)
}

// Flush implements fleet.Sink.
func (t *alertTable) Flush() error { return nil }

// forTenant returns a tenant's histogram sink, nil before its first
// robustness event.
func (t *alertTable) forTenant(group string) *fleet.HistSink {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hists[group]
}
