package fleetd

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/monitor"
	"repro/internal/scs"
)

// Config parameterizes a control-plane server. The zero value is not
// runnable: Platform, Scenarios, and MaxSessions are required.
type Config struct {
	// Platform is the closed-loop test bed every session runs on.
	Platform fleet.Platform
	// Scenarios is the scenario-program table tenant specs index into;
	// tenants may also submit inline programs (TenantSpec.Programs),
	// validated server-side against this fleet's horizon.
	Scenarios []fault.Program
	// MaxSessions bounds the fleet-wide live session total; PUTs whose
	// declared total would exceed it are rejected with 409.
	MaxSessions int
	// Parallel is the fleet worker shard count (0 = GOMAXPROCS-ish
	// fleet default).
	Parallel int
	// Steps is the session length in control cycles; each tenant
	// session replays forever in replicas of this length. Default 288
	// (one day of 5-minute cycles).
	Steps int
	// Seed is the fleet master seed; with a fixed admission history the
	// whole telemetry stream is a deterministic function of it.
	Seed int64
	// SinkEpoch bounds sink buffering: telemetry is merged and
	// delivered every SinkEpoch lock-step rounds. Default 8.
	SinkEpoch int
	// AdmitEvery is the admission-gate period in rounds (0 = fleet
	// default).
	AdmitEvery int
	// Token, when non-empty, requires `Authorization: Bearer <Token>`
	// on every /v1/ endpoint (never on /healthz).
	Token string
	// AlertFloor arms per-tenant margin-floor alerting; NaN disables.
	AlertFloor float64
	// AlertPct arms adaptive per-tenant percentile-floor alerting:
	// each tenant's floor tracks the given quantile of its own margin
	// distribution (must be in (0, 1)). Zero or NaN disables. May be
	// combined with AlertFloor; the fixed floor wins on a double
	// breach.
	AlertPct float64
	// StreamBuffer is the per-subscriber telemetry buffer in events
	// (default 256); a subscriber that falls further behind loses
	// events (counted, never blocking).
	StreamBuffer int
	// Restore seeds the server from a drained control-plane snapshot
	// (Server.DrainToSnapshot / DecodeSnapshot) instead of starting
	// empty: the tenant registry resumes, every captured session resumes
	// at its exact cycle on its original slot, and — under the same
	// Platform, Steps, Seed, SinkEpoch, and AdmitEvery, which New
	// validates — the per-tenant telemetry streams continue
	// byte-identically where the drained server cut them.
	Restore *ServerSnapshot
}

// Server is one control-plane instance wrapping one continuous fleet
// run. Create with New, start with Start, serve Handler, stop with
// Drain.
type Server struct {
	cfg    Config
	adm    *fleet.Admissions
	reg    *registry
	fan    *fanout
	alerts *alertTable // nil when alerting is disabled
	mux    *http.ServeMux

	cancel      context.CancelFunc
	reconCancel context.CancelFunc
	fleetDone   chan struct{}

	mu       sync.Mutex
	fleetErr error
	draining bool
	started  bool
}

// New validates the configuration and assembles an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.Steps == 0 {
		cfg.Steps = 288
	}
	if cfg.SinkEpoch == 0 {
		cfg.SinkEpoch = 8
	}
	if cfg.StreamBuffer == 0 {
		cfg.StreamBuffer = defaultStreamBuffer
	}
	s := &Server{
		cfg:       cfg,
		adm:       fleet.NewAdmissions(),
		reg:       newRegistry(),
		fan:       newFanout(),
		fleetDone: make(chan struct{}),
	}
	pct := cfg.AlertPct
	if pct == 0 {
		pct = math.NaN()
	}
	if !math.IsNaN(pct) && !(pct > 0 && pct < 1) {
		return nil, fmt.Errorf("fleetd: AlertPct %v outside (0, 1)", cfg.AlertPct)
	}
	if !math.IsNaN(cfg.AlertFloor) || !math.IsNaN(pct) {
		s.alerts = newAlertTable(cfg.AlertFloor, pct)
	}
	if cfg.Restore != nil {
		if err := s.validateRestore(cfg.Restore); err != nil {
			return nil, err
		}
		// Seed the registry before the reconciler ever runs: desired
		// state equals the drained state, so a converged snapshot
		// restores without a single admission or eviction.
		for id, spec := range cfg.Restore.Tenants { //fleetvet:nondeterministic map insert order; the registry re-sorts on every list()
			s.reg.put(id, spec)
		}
	}
	if err := s.fleetConfig().Validate(); err != nil {
		return nil, fmt.Errorf("fleetd: %w", err)
	}
	s.routes()
	return s, nil
}

// fleetConfig assembles the continuous admission-controlled fleet the
// server fronts.
func (s *Server) fleetConfig() fleet.Config {
	sinks := []fleet.Sink{s.fan}
	if s.alerts != nil {
		sinks = append(sinks, s.alerts)
	}
	var restore *fleet.FleetSnapshot
	if s.cfg.Restore != nil {
		restore = s.cfg.Restore.Fleet
	}
	return fleet.Config{
		Platform:  s.cfg.Platform,
		Scenarios: s.cfg.Scenarios,
		Sessions:  0, // every session arrives through the reconciler
		Restore:   restore,
		Steps:     s.cfg.Steps,
		Seed:      s.cfg.Seed,
		Parallel:  s.cfg.Parallel,
		NewMonitor: func(int) (monitor.Monitor, error) {
			return monitor.NewCAWOT(scs.TableI(), scs.Params{})
		},
		Telemetry:    &fleet.TelemetryConfig{FromMonitor: true},
		Continuous:   true,
		Admissions:   s.adm,
		MaxSessions:  s.cfg.MaxSessions,
		AdmitEvery:   s.cfg.AdmitEvery,
		ShardedSinks: true,
		SinkEpoch:    s.cfg.SinkEpoch,
		Sinks:        sinks,
	}
}

// Start launches the fleet engine and the reconcile loop. The server
// runs until Drain; ctx cancellation also stops both.
func (s *Server) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return errors.New("fleetd: server already started")
	}
	s.started = true
	// The reconciler's context is a child of the fleet's: Drain stops
	// both through cancel, while DrainToSnapshot stops only the
	// reconciler and lets the fleet run to its drain gate.
	fleetCtx, cancel := context.WithCancel(ctx)
	reconCtx, reconCancel := context.WithCancel(fleetCtx)
	s.cancel, s.reconCancel = cancel, reconCancel
	s.mu.Unlock()

	go func() {
		_, err := fleet.Run(fleetCtx, s.fleetConfig())
		s.mu.Lock()
		s.fleetErr = err
		s.mu.Unlock()
		close(s.fleetDone)
	}()
	if s.cfg.Restore != nil {
		// The reconciler must not observe an empty fleet before the
		// snapshot seeds the live slot set — it would queue duplicate
		// admissions. Hold it back until the restored sessions are
		// visible (or the fleet failed to start, which is fatal here).
		want := len(s.cfg.Restore.Fleet.Sessions)
		for len(s.adm.Live()) < want {
			select {
			case <-s.fleetDone:
				s.mu.Lock()
				err := s.fleetErr
				s.mu.Unlock()
				return fmt.Errorf("fleetd: restore: fleet failed to start: %w", err)
			case <-time.After(time.Millisecond):
			}
		}
	}
	go s.reconcileLoop(reconCtx)
	return nil
}

// Drain gracefully stops the server: the reconciler and fleet shut
// down, in-flight telemetry streams end, and Drain returns the fleet's
// exit error (nil for a clean cancellation). ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return errors.New("fleetd: server never started")
	}
	s.draining = true
	cancel := s.cancel
	s.mu.Unlock()

	cancel()
	select {
	case <-s.fleetDone:
	case <-ctx.Done():
		s.fan.closeAll()
		return fmt.Errorf("fleetd: drain: %w", ctx.Err())
	}
	s.fan.closeAll()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fleetErr
}

// DrainToSnapshot gracefully stops the server through the fleet's
// snapshot drain instead of a plain cancellation: the reconciler stops,
// the fleet stops at its next epoch-aligned admission gate with every
// live session serialized, and the returned control-plane snapshot
// (registry + fleet state) resumes byte-identically through
// Config.Restore. ctx bounds the wait. The server is unusable
// afterwards; telemetry streams end as in Drain.
func (s *Server) DrainToSnapshot(ctx context.Context) (*ServerSnapshot, error) {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil, errors.New("fleetd: server never started")
	}
	if s.draining {
		s.mu.Unlock()
		return nil, errors.New("fleetd: server already draining")
	}
	s.draining = true
	reconCancel, cancel := s.reconCancel, s.cancel
	s.mu.Unlock()

	// Stop the reconciler first so it cannot queue operations behind the
	// drain request; whatever it already queued is re-queued unapplied by
	// the drain gate and simply discarded with the run.
	reconCancel()

	var dr fleet.DrainResult
	attempts := s.cfg.SinkEpoch // gates repeat mod lcm(AdmitEvery, SinkEpoch); SinkEpoch tries always reach an aligned one
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; ; i++ {
		res := s.adm.Drain()
		select {
		case dr = <-res:
		case <-ctx.Done():
			s.fan.closeAll()
			cancel()
			return nil, fmt.Errorf("fleetd: snapshot drain: %w", ctx.Err())
		case <-s.fleetDone:
			s.mu.Lock()
			err := s.fleetErr
			s.mu.Unlock()
			s.fan.closeAll()
			return nil, fmt.Errorf("fleetd: snapshot drain: fleet stopped before the drain gate: %w", err)
		}
		if dr.Err == nil {
			break
		}
		if !errors.Is(dr.Err, fleet.ErrDrainMisaligned) || i+1 >= attempts {
			s.fan.closeAll()
			cancel()
			return nil, fmt.Errorf("fleetd: snapshot drain: %w", dr.Err)
		}
	}

	// The drain gate makes Run return on its own; wait for it, then
	// release the contexts and streams.
	select {
	case <-s.fleetDone:
	case <-ctx.Done():
		s.fan.closeAll()
		cancel()
		return nil, fmt.Errorf("fleetd: snapshot drain: %w", ctx.Err())
	}
	s.fan.closeAll()
	cancel()
	s.mu.Lock()
	ferr := s.fleetErr
	s.mu.Unlock()
	if ferr != nil {
		return nil, fmt.Errorf("fleetd: snapshot drain: %w", ferr)
	}
	_, specs := s.reg.list()
	return &ServerSnapshot{
		Platform:   s.cfg.Platform.Name,
		Steps:      s.cfg.Steps,
		Seed:       s.cfg.Seed,
		SinkEpoch:  s.cfg.SinkEpoch,
		AdmitEvery: s.cfg.AdmitEvery,
		Tenants:    specs,
		Fleet:      dr.Snapshot,
	}, nil
}

// Handler returns the HTTP surface: /healthz plus the bearer-guarded
// /v1/ API.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Token != "" && r.URL.Path != "/healthz" {
			tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(s.cfg.Token)) != 1 {
				httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
		}
		s.mux.ServeHTTP(w, r)
	})
}

// routes wires the endpoint table (Go 1.22 method+wildcard patterns).
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("PUT /v1/tenants/{id}", s.handlePutTenant)
	s.mux.HandleFunc("GET /v1/tenants/{id}", s.handleGetTenant)
	s.mux.HandleFunc("DELETE /v1/tenants/{id}", s.handleDeleteTenant)
	s.mux.HandleFunc("GET /v1/tenants/{id}/telemetry", s.handleTelemetry)
	s.mux.HandleFunc("GET /v1/tenants/{id}/alerts", s.handleAlerts)
	s.mux.HandleFunc("POST /v1/tenants/{id}/snapshot", s.handleSnapshotTenant)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.fleetDone:
		s.mu.Lock()
		err := s.fleetErr
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("fleet stopped: %v", err))
	default:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ids, specs := s.reg.list()
	desired := 0
	for _, id := range ids {
		desired += specs[id].desired()
	}
	rejected, _ := s.adm.Rejected()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	st := Status{
		Platform:      s.cfg.Platform.Name,
		Scenarios:     len(s.cfg.Scenarios),
		MaxSessions:   s.cfg.MaxSessions,
		Live:          len(s.adm.Live()),
		Tenants:       ids,
		Desired:       desired,
		Generation:    s.adm.Gen(),
		Rejected:      rejected,
		StreamDropped: s.fan.droppedTotal(),
		Draining:      draining,
	}
	if s.alerts != nil {
		if !math.IsNaN(s.cfg.AlertFloor) {
			floor := s.cfg.AlertFloor
			st.AlertFloor = &floor
		}
		if !math.IsNaN(s.alerts.pct) {
			pct := s.alerts.pct
			st.AlertPct = &pct
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handlePutTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !tenantIDOK(id) {
		httpError(w, http.StatusBadRequest, "tenant id must be 1-64 chars of [a-zA-Z0-9._-]")
		return
	}
	var spec TenantSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return
	}
	if err := spec.validate(s.cfg.Platform.NumPatients, len(s.cfg.Scenarios), s.cfg.Steps, serverCycleMin); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Capacity admission control. Concurrent PUTs can race past this
	// check; the fleet's own MaxSessions bound is the backstop and any
	// overflow surfaces in Status.Rejected.
	if total := s.reg.desiredTotal(id, spec); total > s.cfg.MaxSessions {
		httpError(w, http.StatusConflict, fmt.Sprintf(
			"declared total %d exceeds fleet capacity %d", total, s.cfg.MaxSessions))
		return
	}
	_, existed := s.reg.get(id)
	s.reg.put(id, spec)
	code := http.StatusCreated
	if existed {
		code = http.StatusOK
	}
	writeJSON(w, code, s.tenantStatus(id, spec))
}

func (s *Server) handleGetTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spec, ok := s.reg.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such tenant")
		return
	}
	writeJSON(w, http.StatusOK, s.tenantStatus(id, spec))
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	if !s.reg.delete(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, "no such tenant")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// tenantStatus assembles the reconciler's live view of one tenant.
func (s *Server) tenantStatus(id string, spec TenantSpec) TenantStatus {
	st := TenantStatus{
		ID: id, Spec: spec, Desired: spec.desired(),
		Slots:         []int{},
		StreamDropped: s.fan.droppedFor(id),
	}
	for _, ls := range s.adm.Live() {
		if ls.Group == id {
			st.Slots = append(st.Slots, ls.Slot)
		}
	}
	st.Live = len(st.Slots)
	if s.alerts != nil {
		if h := s.alerts.forTenant(id); h != nil {
			st.AlertCount = h.AlertCount()
		}
	}
	return st
}

// handleTelemetry streams the tenant's fleet events as JSONL (default)
// or SSE (Accept: text/event-stream) until the client goes away or the
// server drains. The stream is lossy under backpressure by contract:
// events a slow client cannot buffer are dropped and counted, never
// queued against the fleet.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.reg.get(id); !ok {
		httpError(w, http.StatusNotFound, "no such tenant")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub := s.fan.subscribe(id, s.cfg.StreamBuffer)
	if sub == nil {
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	defer s.fan.unsubscribe(sub)

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case line, ok := <-sub.ch:
			if !ok {
				return // server drain
			}
			if sse {
				// EncodeJSON lines are newline-terminated single lines;
				// data: + blank line frames one SSE event.
				if _, err := fmt.Fprintf(w, "data: %s\n", line); err != nil {
					return
				}
			} else if _, err := w.Write(line); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// snapshotJSON is the wire shape of a tenant snapshot: the sealed
// fleet-snapshot envelope (base64 in JSON) holding every one of the
// tenant's live sessions at one admission gate, ready for
// fleet.AdmitSpec.Restore migration into another fleet.
type snapshotJSON struct {
	Sessions int    `json:"sessions"`
	Bytes    int    `json:"bytes"`
	Snapshot []byte `json:"snapshot"`
}

// handleSnapshotTenant captures one tenant's live sessions at the next
// admission gate without disturbing the fleet: the sessions keep
// running, and the sealed snapshot returns to the caller. The capture
// waits for a gate, so the request completes within one AdmitEvery
// period.
func (s *Server) handleSnapshotTenant(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.reg.get(id); !ok {
		httpError(w, http.StatusNotFound, "no such tenant")
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	res := s.adm.SnapshotGroup(id)
	var dr fleet.DrainResult
	select {
	case dr = <-res:
	case <-r.Context().Done():
		return
	case <-s.fleetDone:
		httpError(w, http.StatusServiceUnavailable, "fleet stopped")
		return
	}
	if dr.Err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("snapshot: %v", dr.Err))
		return
	}
	sealed := dr.Snapshot.Encode()
	writeJSON(w, http.StatusOK, snapshotJSON{
		Sessions: len(dr.Snapshot.Sessions),
		Bytes:    len(sealed),
		Snapshot: sealed,
	})
}

// alertJSON is the wire shape of one margin-floor breach.
type alertJSON struct {
	Session    int     `json:"session"`
	PatientIdx int     `json:"patient"`
	Replica    int     `json:"replica,omitempty"`
	Step       int     `json:"step"`
	Margin     float64 `json:"margin"`
	Rule       int     `json:"rule,omitempty"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.reg.get(id); !ok {
		httpError(w, http.StatusNotFound, "no such tenant")
		return
	}
	type resp struct {
		Enabled bool    `json:"enabled"`
		Floor   float64 `json:"floor,omitempty"`
		Pct     float64 `json:"pct,omitempty"`
		// PctFloor is the tenant's live adaptive floor: null until the
		// tenant's margin distribution has enough samples.
		PctFloor *float64    `json:"pct_floor,omitempty"`
		Count    int64       `json:"count"`
		Alerts   []alertJSON `json:"alerts"`
	}
	out := resp{Alerts: []alertJSON{}}
	if s.alerts != nil {
		out.Enabled = true
		if !math.IsNaN(s.cfg.AlertFloor) {
			out.Floor = s.cfg.AlertFloor
		}
		if !math.IsNaN(s.alerts.pct) {
			out.Pct = s.alerts.pct
		}
		if h := s.alerts.forTenant(id); h != nil {
			if floor, live := h.AlertPercentileFloor(); live {
				out.PctFloor = &floor
			}
			out.Count = h.AlertCount()
			for _, al := range h.Alerts() {
				out.Alerts = append(out.Alerts, alertJSON{
					Session: al.Session, PatientIdx: al.PatientIdx, Replica: al.Replica,
					Step: al.Step, Margin: al.Margin, Rule: al.Rule,
				})
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}
