// Package closedloop wires a virtual patient, an APS controller, an
// optional fault injector, and an optional safety monitor into the
// closed-loop simulation of Fig. 5a: 150 five-minute control cycles
// (about 12 hours) starting from a configurable initial glucose.
//
//fleetvet:deterministic
package closedloop

import (
	"fmt"
	"math"

	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/risk"
	"repro/internal/trace"
)

// Monitor is the safety-monitor interface the loop drives. It matches
// internal/monitor.Monitor structurally; closedloop declares its own copy
// to avoid a dependency cycle (monitors are tested against the loop).
type Monitor interface {
	Name() string
	Reset()
	Step(obs Observation) Verdict
}

// Observation is the monitor's view of one control cycle: the clean
// sensor value, the monitor's own derived estimates, and the controller's
// commanded action (Section II: the monitor wraps the controller's
// input-output interface).
type Observation struct {
	Step     int
	TimeMin  float64
	CycleMin float64
	CGM      float64 // clean sensed glucose, mg/dL
	BGPrime  float64 // dCGM/dt, mg/dL/min
	IOB      float64 // monitor-side net IOB estimate, U
	IOBPrime float64 // dIOB/dt, U/min
	Rate     float64 // controller's commanded rate, U/h
	PrevRate float64 // previously delivered rate, U/h
	Action   trace.Action
	Basal    float64 // patient's scheduled basal, U/h
}

// Verdict is the monitor's decision for the cycle. Beyond the boolean
// alarm, margin-carrying monitors (the streaming CAWT/CAWOT) report the
// signed robustness of the decision so downstream consumers — Algorithm 1
// margin scaling, fleet hazard telemetry, the evaluation tables — read
// one evaluation instead of re-running the rules.
type Verdict struct {
	Alarm  bool
	Hazard trace.HazardType // predicted hazard class when Alarm
	// Margin is the signed robustness margin of the verdict: positive is
	// the distance to the nearest rule boundary, negative the depth of
	// the worst violated rule. Zero for monitors that do not compute
	// margins (ML baselines, guideline, MPC).
	Margin float64
	// Rule is the Safety Context Specification rule ID attaining Margin
	// (the violated rule on an alarm, the tightest rule otherwise);
	// 0 when the monitor has no rule attribution.
	Rule int
	// Confidence is the monitor's confidence in the verdict in [0, 1]:
	// margin-carrying monitors report |Margin|/(1+|Margin|), ML monitors
	// their predicted-class probability; 0 when unknown.
	Confidence float64
}

// Pump bounds the actuator.
type Pump struct {
	MaxRate float64 // hardware ceiling, U/h
}

// DefaultPump is a typical insulin pump limit.
var DefaultPump = Pump{MaxRate: 30}

// Patient is the virtual-patient surface the loop needs; satisfied by
// *glucosym.Patient and *uvapadova.Patient.
type Patient interface {
	ID() string
	Step(insulinUPerH, carbGPerMin, dtMin float64)
	BG() float64
	CGM() float64
	Basal() float64
	Reset(initialBG float64)
}

// MitigationConfig enables Algorithm 1: when the monitor raises an alarm
// the unsafe command is replaced — zero insulin for a predicted H1,
// a fixed maximum insulin rate for a predicted H2 — until the monitor
// stops alarming.
type MitigationConfig struct {
	Enabled bool
	// MaxInsulin is the corrective rate for H2 mitigation, U/h. Zero
	// selects 4x the patient basal (the temp-basal ceiling), the fixed
	// value used for the paper's fair cross-monitor comparison.
	MaxInsulin float64
	// Corrective optionally selects a context-dependent corrective rate
	// (the f(ρ(µ(x)), u) of Algorithm 1, e.g. an scs.HMS). Returning
	// false falls back to the fixed strategy above.
	Corrective func(hazard trace.HazardType, obs Observation) (float64, bool)
	// ScaleByMargin blends the corrective rate with the issued command in
	// proportion to the verdict's violation depth: the delivered rate is
	//
	//	rate + min(1, -Margin/MarginRef) · (corrective - rate)
	//
	// so a shallow boundary violation gets a gentle nudge and a deep one
	// the full Algorithm 1 action. Verdicts without margin information
	// (Margin >= 0 on an alarm) apply the full correction, preserving the
	// fixed behavior for non-margin monitors. The scaling is pure
	// arithmetic on the verdict, so fleet results remain deterministic at
	// any parallelism level. Default off.
	ScaleByMargin bool
	// MarginRef is the violation depth (robustness units) at which the
	// scaled correction saturates at the full Algorithm 1 action.
	// Zero selects 1.
	MarginRef float64
}

// Config assembles one simulation run.
type Config struct {
	Platform   string // label recorded on the trace, e.g. "glucosym/openaps"
	Steps      int    // control cycles (default 150)
	CycleMin   float64
	InitialBG  float64
	Patient    Patient
	Controller control.Controller
	Fault      *fault.Fault // nil for a fault-free run
	// Plan is a compiled scenario program: injections plus the timeline
	// disturbances (meals, exercise, CGM dropout/bias, pump occlusion)
	// the enum Fault cannot express. Mutually exclusive with Fault; its
	// horizon must match Steps/CycleMin. A plan bridged from a legacy
	// Scenario executes byte-identically to setting Fault.
	Plan       *fault.Plan
	Monitor    Monitor // nil to run without a safety monitor
	Mitigation MitigationConfig
	Pump       Pump
	Labeler    risk.Labeler
	// DIA/PeakT parameterize the monitor-side IOB estimate.
	DIA   float64
	PeakT float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Patient == nil {
		return c, fmt.Errorf("closedloop: nil patient")
	}
	if c.Controller == nil {
		return c, fmt.Errorf("closedloop: nil controller")
	}
	if c.Steps == 0 {
		c.Steps = 150
	}
	if c.Steps < 1 {
		return c, fmt.Errorf("closedloop: invalid step count %d", c.Steps)
	}
	if c.CycleMin == 0 {
		c.CycleMin = 5
	}
	if c.CycleMin <= 0 {
		return c, fmt.Errorf("closedloop: invalid cycle length %v", c.CycleMin)
	}
	if c.Plan != nil {
		if c.Fault != nil {
			return c, fmt.Errorf("closedloop: Fault and Plan are mutually exclusive")
		}
		if c.Plan.Steps() != c.Steps || c.Plan.CycleMin() != c.CycleMin {
			return c, fmt.Errorf("closedloop: plan compiled for %d steps of %v min, loop runs %d of %v",
				c.Plan.Steps(), c.Plan.CycleMin(), c.Steps, c.CycleMin)
		}
		if c.InitialBG == 0 {
			c.InitialBG = c.Plan.InitialBG()
		}
	}
	if c.InitialBG == 0 {
		c.InitialBG = 120
	}
	if c.Pump.MaxRate == 0 {
		c.Pump = DefaultPump
	}
	if c.Mitigation.Enabled && c.Mitigation.MaxInsulin == 0 {
		c.Mitigation.MaxInsulin = 4 * c.Patient.Basal()
	}
	if c.Mitigation.ScaleByMargin {
		if c.Mitigation.MarginRef < 0 {
			// A negative reference would invert the blend and extrapolate
			// delivery away from the corrective action — more insulin on a
			// too-much-insulin alarm.
			return c, fmt.Errorf("closedloop: negative MarginRef %v", c.Mitigation.MarginRef)
		}
		if c.Mitigation.MarginRef == 0 {
			c.Mitigation.MarginRef = 1
		}
	}
	if c.DIA == 0 {
		c.DIA = 300
	}
	if c.PeakT == 0 {
		c.PeakT = 75
	}
	return c, nil
}

// Run executes one closed-loop simulation and returns the labeled trace.
// It drives a Stepper to completion; the fleet engine uses the same
// Stepper to interleave many simulations as concurrent sessions.
func Run(cfg Config) (*trace.Trace, error) {
	st, err := NewStepper(cfg, StepperOptions{})
	if err != nil {
		return nil, err
	}
	for !st.Done() {
		st.Step()
	}
	return st.Finish(), nil
}

// mitigate implements the corrective action of Algorithm 1.
func mitigate(h trace.HazardType, m MitigationConfig, p Pump) float64 {
	switch h {
	case trace.HazardH1:
		return 0 // too much insulin on the way: cut it
	case trace.HazardH2:
		return clampRate(m.MaxInsulin, p) // too little insulin: add the fixed max
	default:
		return 0
	}
}

func clampRate(rate float64, p Pump) float64 {
	if rate < 0 || math.IsNaN(rate) {
		return 0
	}
	if rate > p.MaxRate {
		return p.MaxRate
	}
	return rate
}
