package closedloop

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/sim/glucosym"
	"repro/internal/sim/uvapadova"
	"repro/internal/trace"
)

func newGlucosymRig(t *testing.T, idx int) (Patient, control.Controller) {
	t.Helper()
	p, err := glucosym.New(idx)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := control.NewOpenAPS(control.OpenAPSConfig{Basal: p.Basal(), ISF: 40})
	if err != nil {
		t.Fatal(err)
	}
	return p, ctrl
}

func newUVARig(t *testing.T, idx int) (Patient, control.Controller) {
	t.Helper()
	p, err := uvapadova.New(idx)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := control.NewBasalBolus(control.BasalBolusConfig{Basal: p.Basal(), ISF: 40})
	if err != nil {
		t.Fatal(err)
	}
	return p, ctrl
}

func TestConfigValidation(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 0)
	if _, err := Run(Config{Controller: ctrl}); err == nil {
		t.Error("nil patient should fail")
	}
	if _, err := Run(Config{Patient: p}); err == nil {
		t.Error("nil controller should fail")
	}
	if _, err := Run(Config{Patient: p, Controller: ctrl, Steps: -3}); err == nil {
		t.Error("negative steps should fail")
	}
	if _, err := Run(Config{Patient: p, Controller: ctrl, CycleMin: -1}); err == nil {
		t.Error("negative cycle should fail")
	}
}

func TestFaultFreeRunStaysEuglycemic(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 0)
	tr, err := Run(Config{
		Platform: "glucosym/openaps", Patient: p, Controller: ctrl,
		InitialBG: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 150 {
		t.Fatalf("trace length %d, want 150", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if tr.Faulty() {
		t.Error("fault-free run marked faulty")
	}
	for _, s := range tr.Samples {
		if s.BG < 60 || s.BG > 250 {
			t.Fatalf("step %d: BG %v escaped euglycemic control", s.Step, s.BG)
		}
	}
}

func TestFaultFreeRunsFromAllInitialBGs(t *testing.T) {
	for _, bg := range fault.DefaultInitialBGs {
		p, ctrl := newGlucosymRig(t, 1)
		tr, err := Run(Config{Patient: p, Controller: ctrl, InitialBG: bg})
		if err != nil {
			t.Fatalf("bg %v: %v", bg, err)
		}
		last := tr.Samples[tr.Len()-1].BG
		if last < 60 || last > 220 {
			t.Errorf("initial %v: final BG %v not brought toward range", bg, last)
		}
	}
}

func TestMaxGlucoseFaultDrivesHypo(t *testing.T) {
	// Spoofing maximum glucose makes OpenAPS over-deliver, driving the
	// patient toward hypoglycemia (H1) — the paper's most damaging fault
	// class (Fig. 8 discussion).
	p, ctrl := newGlucosymRig(t, 0)
	f := &fault.Fault{Kind: fault.KindMax, Target: "glucose", Value: 400, StartStep: 10, Duration: 42}
	tr, err := Run(Config{Patient: p, Controller: ctrl, InitialBG: 120, Fault: f})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Faulty() {
		t.Fatal("trace should be faulty")
	}
	minBG := 1000.0
	for _, s := range tr.Samples {
		minBG = math.Min(minBG, s.BG)
	}
	if minBG > 80 {
		t.Errorf("min BG %v under max-glucose fault, want hypoglycemia", minBG)
	}
	if !tr.Hazardous() {
		t.Error("max-glucose fault should label a hazard")
	}
	if tr.DominantHazard() != trace.HazardH1 {
		t.Errorf("dominant hazard %v, want H1", tr.DominantHazard())
	}
}

func TestMinGlucoseFaultDrivesHyper(t *testing.T) {
	// Spoofing minimum glucose suspends insulin; BG drifts up (H2).
	p, ctrl := newGlucosymRig(t, 2) // high-EGP patient rises faster
	f := &fault.Fault{Kind: fault.KindMin, Target: "glucose", Value: 40, StartStep: 10, Duration: 60}
	tr, err := Run(Config{Patient: p, Controller: ctrl, InitialBG: 160, Fault: f})
	if err != nil {
		t.Fatal(err)
	}
	maxBG := 0.0
	for _, s := range tr.Samples {
		maxBG = math.Max(maxBG, s.BG)
	}
	if maxBG < 200 {
		t.Errorf("max BG %v under min-glucose fault, want hyperglycemia", maxBG)
	}
}

func TestFaultActiveFlagsMatchWindow(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 0)
	f := &fault.Fault{Kind: fault.KindHold, Target: "glucose", StartStep: 20, Duration: 10}
	tr, err := Run(Config{Patient: p, Controller: ctrl, Fault: f})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Samples {
		want := s.Step >= 20 && s.Step < 30
		if s.FaultActive != want {
			t.Fatalf("step %d: FaultActive=%v, want %v", s.Step, s.FaultActive, want)
		}
	}
}

func TestUVAPlatformRuns(t *testing.T) {
	p, ctrl := newUVARig(t, 0)
	tr, err := Run(Config{
		Platform: "uvapadova/basalbolus", Patient: p, Controller: ctrl,
		InitialBG: 140,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	last := tr.Samples[tr.Len()-1].BG
	if last < 60 || last > 250 {
		t.Errorf("final BG %v out of plausible control band", last)
	}
}

// recordingMonitor alarms whenever CGM exceeds a threshold.
type recordingMonitor struct {
	threshold float64
	calls     int
}

func (m *recordingMonitor) Name() string { return "recording" }
func (m *recordingMonitor) Reset()       { m.calls = 0 }
func (m *recordingMonitor) Step(obs Observation) Verdict {
	m.calls++
	if obs.CGM > m.threshold {
		return Verdict{Alarm: true, Hazard: trace.HazardH2}
	}
	return Verdict{}
}

func TestMonitorReceivesEveryCycle(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 0)
	mon := &recordingMonitor{threshold: 1e9}
	_, err := Run(Config{Patient: p, Controller: ctrl, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if mon.calls != 150 {
		t.Errorf("monitor called %d times, want 150", mon.calls)
	}
}

func TestMitigationOverridesCommand(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 2)
	// Force hyperglycemia via min-glucose fault, with an H2-alarming
	// monitor and mitigation on: delivered rate must exceed commanded.
	f := &fault.Fault{Kind: fault.KindMin, Target: "glucose", Value: 40, StartStep: 5, Duration: 60}
	mon := &recordingMonitor{threshold: 200}
	tr, err := Run(Config{
		Patient: p, Controller: ctrl, InitialBG: 160, Fault: f,
		Monitor:    mon,
		Mitigation: MitigationConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * p.Basal() // fixed H2 corrective rate
	var sawMitigation bool
	for _, s := range tr.Samples {
		if s.Mitigated {
			sawMitigation = true
			if math.Abs(s.Delivered-want) > 1e-9 {
				t.Fatalf("step %d: H2 mitigation delivered %v, want fixed %v", s.Step, s.Delivered, want)
			}
		} else if s.Delivered != s.Rate {
			t.Fatalf("step %d: unmitigated sample has delivered %v != rate %v", s.Step, s.Delivered, s.Rate)
		}
	}
	if !sawMitigation {
		t.Error("expected at least one mitigated cycle")
	}
}

func TestMitigationH1CutsInsulin(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 0)
	f := &fault.Fault{Kind: fault.KindMax, Target: "glucose", Value: 400, StartStep: 5, Duration: 42}
	// Monitor that alarms H1 when CGM is falling under heavy dosing.
	mon := monitorFunc(func(obs Observation) Verdict {
		if obs.Rate > 2*obs.Basal {
			return Verdict{Alarm: true, Hazard: trace.HazardH1}
		}
		return Verdict{}
	})
	tr, err := Run(Config{
		Patient: p, Controller: ctrl, Fault: f,
		Monitor:    mon,
		Mitigation: MitigationConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Samples {
		if s.Mitigated && s.Delivered != 0 {
			t.Fatalf("step %d: H1 mitigation delivered %v, want 0", s.Step, s.Delivered)
		}
	}
}

type monitorFunc func(Observation) Verdict

func (monitorFunc) Name() string                 { return "func" }
func (monitorFunc) Reset()                       {}
func (f monitorFunc) Step(o Observation) Verdict { return f(o) }

func TestPumpClampsRateFaults(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 0)
	f := &fault.Fault{Kind: fault.KindAdd, Target: "rate", Value: 500, StartStep: 0, Duration: 150}
	tr, err := Run(Config{Patient: p, Controller: ctrl, Fault: f, Pump: Pump{MaxRate: 25}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Samples {
		if s.Rate > 25 || s.Delivered > 25 {
			t.Fatalf("step %d: rate %v exceeds pump limit", s.Step, s.Rate)
		}
	}
}

func TestActionsClassified(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 0)
	f := &fault.Fault{Kind: fault.KindMax, Target: "glucose", Value: 400, StartStep: 10, Duration: 30}
	tr, err := Run(Config{Patient: p, Controller: ctrl, Fault: f})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[trace.Action]int)
	for _, s := range tr.Samples {
		counts[s.Action]++
	}
	if len(counts) < 2 {
		t.Errorf("only %d distinct actions observed: %v", len(counts), counts)
	}
	if counts[trace.ActionUnknown] > 0 {
		t.Error("unclassified actions in trace")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *trace.Trace {
		p, ctrl := newGlucosymRig(t, 3)
		f := &fault.Fault{Kind: fault.KindSub, Target: "glucose", Value: 75, StartStep: 20, Duration: 36}
		tr, err := Run(Config{Patient: p, Controller: ctrl, InitialBG: 140, Fault: f})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("non-deterministic at step %d:\n%+v\n%+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

// marginMonitor alarms H1 above a CGM threshold with a configurable
// violation depth, exercising the margin-scaled Algorithm 1 path.
type marginMonitor struct {
	threshold float64
	margin    float64
}

func (m *marginMonitor) Name() string { return "margin" }
func (m *marginMonitor) Reset()       {}
func (m *marginMonitor) Step(obs Observation) Verdict {
	if obs.CGM > m.threshold {
		return Verdict{Alarm: true, Hazard: trace.HazardH1, Margin: m.margin, Rule: 6}
	}
	return Verdict{}
}

// TestMitigationScaleByMargin: with ScaleByMargin the delivered rate
// must interpolate between the issued command and the Algorithm 1
// corrective action in proportion to the violation depth, saturating at
// the full correction at MarginRef.
func TestMitigationScaleByMargin(t *testing.T) {
	run := func(margin float64, scale bool) *trace.Trace {
		p, ctrl := newGlucosymRig(t, 0)
		f := &fault.Fault{Kind: fault.KindMax, Target: "glucose", Value: 400, StartStep: 5, Duration: 42}
		tr, err := Run(Config{
			Patient: p, Controller: ctrl, Fault: f,
			// threshold 0: alarm (and mitigate) on every cycle, so the
			// blend is exercised across the whole command range.
			Monitor:    &marginMonitor{threshold: 0, margin: margin},
			Mitigation: MitigationConfig{Enabled: true, ScaleByMargin: scale, MarginRef: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	// Half-depth violation (margin -1 of ref 2): delivered must sit
	// exactly halfway between the command and the H1 corrective (0).
	tr := run(-1, true)
	var mitigated int
	for _, s := range tr.Samples {
		if !s.Mitigated {
			continue
		}
		mitigated++
		want := s.Rate + 0.5*(0-s.Rate)
		if math.Abs(s.Delivered-want) > 1e-12 {
			t.Fatalf("step %d: delivered %v, want half-blend %v (rate %v)", s.Step, s.Delivered, want, s.Rate)
		}
	}
	if mitigated == 0 {
		t.Fatal("scenario never mitigated")
	}

	// Depth beyond MarginRef saturates at the full H1 cut.
	tr = run(-5, true)
	for _, s := range tr.Samples {
		if s.Mitigated && s.Delivered != 0 {
			t.Fatalf("step %d: saturated H1 mitigation delivered %v, want 0", s.Step, s.Delivered)
		}
	}

	// A margin-free alarm (Margin == 0) must apply the full correction
	// even with scaling on — non-margin monitors keep Algorithm 1 as-is.
	tr = run(0, true)
	for _, s := range tr.Samples {
		if s.Mitigated && s.Delivered != 0 {
			t.Fatalf("step %d: margin-free alarm delivered %v, want full correction 0", s.Step, s.Delivered)
		}
	}

	// And with scaling off the margin is ignored entirely.
	tr = run(-1, false)
	for _, s := range tr.Samples {
		if s.Mitigated && s.Delivered != 0 {
			t.Fatalf("step %d: ScaleByMargin off but delivered %v != 0", s.Step, s.Delivered)
		}
	}
}

// TestStepperLastVerdict: the stepper must retain the applied verdict —
// margin and rule included — for telemetry consumers.
func TestStepperLastVerdict(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 0)
	st, err := NewStepper(Config{
		Patient: p, Controller: ctrl, InitialBG: 120, Steps: 3,
		Monitor: &marginMonitor{threshold: 0, margin: -0.75},
	}, StepperOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.LastVerdict(); ok {
		t.Fatal("LastVerdict before any step should report false")
	}
	st.Step()
	v, ok := st.LastVerdict()
	if !ok || !v.Alarm || v.Margin != -0.75 || v.Rule != 6 {
		t.Fatalf("LastVerdict = %+v (ok=%v), want the monitor's margin verdict", v, ok)
	}
}

// TestMitigationRejectsNegativeMarginRef: a negative reference would
// invert the blend (more insulin on a too-much-insulin alarm).
func TestMitigationRejectsNegativeMarginRef(t *testing.T) {
	p, ctrl := newGlucosymRig(t, 0)
	_, err := Run(Config{
		Patient: p, Controller: ctrl,
		Monitor:    &marginMonitor{threshold: 0, margin: -0.5},
		Mitigation: MitigationConfig{Enabled: true, ScaleByMargin: true, MarginRef: -1},
	})
	if err == nil {
		t.Error("negative MarginRef should be rejected")
	}
}

// TestDeferredSteppingMatchesStep: driving a stepper through the
// batched-engine protocol — CleanCGM + external sensor transform,
// BeginStepSensed, MonitorVerdict, FinishStepDeferred, then advancing
// the patient outside the stepper — must reproduce the plain Step loop
// sample for sample, including under margin-scaled mitigation.
func TestDeferredSteppingMatchesStep(t *testing.T) {
	newCfg := func() (Config, StepperOptions) {
		p, ctrl := newGlucosymRig(t, 1)
		f := &fault.Fault{Kind: fault.KindAdd, Target: "glucose", Value: 60, StartStep: 10, Duration: 30}
		cfg := Config{
			Patient: p, Controller: ctrl, InitialBG: 130, Steps: 60, CycleMin: 5,
			Fault: f,
			// threshold 0: alarm (and mitigate) on every cycle, so the
			// deferred path is compared under active mitigation throughout.
			Monitor:    &marginMonitor{threshold: 0, margin: -1},
			Mitigation: MitigationConfig{Enabled: true, ScaleByMargin: true, MarginRef: 2},
		}
		sensorFn := func(clean, _ float64) float64 { return clean + 1.5 }
		return cfg, StepperOptions{Sensor: sensorFn}
	}

	cfgA, optsA := newCfg()
	stA, err := NewStepper(cfgA, optsA)
	if err != nil {
		t.Fatal(err)
	}
	for !stA.Done() {
		stA.Step()
	}
	want := stA.Finish()

	cfgB, _ := newCfg()
	// The deferred path owns the sensor channel and physiology itself.
	stB, err := NewStepper(cfgB, StepperOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for !stB.Done() {
		cgm := stB.CleanCGM() + 1.5
		if now := stB.CycleTime(); now != float64(stB.StepIndex())*5 {
			t.Fatalf("CycleTime %v at step %d", now, stB.StepIndex())
		}
		obs := stB.BeginStepSensed(cgm)
		delivered := stB.FinishStepDeferred(stB.MonitorVerdict(obs))
		cfgB.Patient.Step(delivered, 0, 5)
	}
	got := stB.Finish()

	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("%d samples, want %d", len(got.Samples), len(want.Samples))
	}
	mitigated := false
	for i := range want.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("step %d differs:\ndeferred %+v\nstep     %+v", i, got.Samples[i], want.Samples[i])
		}
		if want.Samples[i].Mitigated {
			mitigated = true
		}
	}
	if !mitigated {
		t.Fatal("mitigation never fired — comparison is vacuous")
	}
}
