// Snapshot/restore of a live closed-loop session. A Stepper serializes
// its loop cursor, accumulated trace samples, verdict memory, monitor
// IOB model, fault-injection progress, controller, and patient — the
// complete state needed to resume the run bit-exactly on a freshly
// constructed Stepper built from the same Config. The attached Monitor
// is NOT part of the stepper's bytes: fleet engines run monitors as
// shard-level batch lanes and checkpoint them alongside.

package closedloop

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Snapshot serializes the stepper's resumable state into enc. It fails
// when a cycle is split open (between BeginStep and FinishStep), after
// Finish, or when the controller or patient does not support
// checkpointing — snapshot sits at cycle boundaries by design.
func (st *Stepper) Snapshot(enc *snapshot.Encoder) error {
	if st.pending.active {
		return fmt.Errorf("closedloop: cannot snapshot mid-cycle")
	}
	if st.finished {
		return fmt.Errorf("closedloop: cannot snapshot a finished stepper")
	}

	enc.Int(st.step)
	enc.Float64(st.prevCGM)
	enc.Float64(st.prevIOB)
	enc.Float64(st.prevDelivered)

	enc.Bool(st.lastVerdict.Alarm)
	enc.Int(int(st.lastVerdict.Hazard))
	enc.Float64(st.lastVerdict.Margin)
	enc.Int(st.lastVerdict.Rule)
	enc.Float64(st.lastVerdict.Confidence)

	enc.Int(len(st.tr.Samples))
	for i := range st.tr.Samples {
		snapshotSample(enc, &st.tr.Samples[i])
	}

	st.monIOB.SnapshotState(enc)

	// One presence bit covers both fault paths; for a plan the injector
	// count is implied by the Config's plan, so a bridged single-inject
	// plan writes exactly the legacy bytes.
	planInj := st.exec != nil && st.exec.HasInjectors()
	enc.Bool(st.injector != nil || planInj)
	if st.injector != nil {
		st.injector.SnapshotState(enc)
	} else if planInj {
		st.exec.SnapshotState(enc)
	}

	ctrl, ok := st.cfg.Controller.(snapshot.Snapshotter)
	if !ok {
		return fmt.Errorf("closedloop: controller %T does not support snapshot", st.cfg.Controller)
	}
	ctrl.SnapshotState(enc)

	return snapshotPatient(enc, st.cfg.Patient)
}

// Restore loads state previously written by Snapshot into a freshly
// constructed Stepper built from the same Config. On error the stepper
// must be discarded.
func (st *Stepper) Restore(dec *snapshot.Decoder) error {
	if st.pending.active || st.finished || st.step != 0 {
		return fmt.Errorf("closedloop: restore target is not a fresh stepper")
	}

	step := dec.Int()
	prevCGM := dec.Float64()
	prevIOB := dec.Float64()
	prevDelivered := dec.Float64()

	var v Verdict
	v.Alarm = dec.Bool()
	v.Hazard = trace.HazardType(dec.Int())
	v.Margin = dec.Float64()
	v.Rule = dec.Int()
	v.Confidence = dec.Float64()

	n := dec.Count(1)
	if err := dec.Err(); err != nil {
		return err
	}
	if step < 0 || step > st.cfg.Steps {
		return fmt.Errorf("closedloop: restored step %d outside [0, %d]", step, st.cfg.Steps)
	}
	if n != step {
		return fmt.Errorf("closedloop: restored %d samples for step cursor %d", n, step)
	}
	samples := st.tr.Samples[:0]
	for i := 0; i < n; i++ {
		samples = append(samples, restoreSample(dec))
	}
	if err := dec.Err(); err != nil {
		return err
	}

	if err := st.monIOB.RestoreState(dec); err != nil {
		return fmt.Errorf("closedloop: monitor iob: %w", err)
	}

	hadInjector := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	planInj := st.exec != nil && st.exec.HasInjectors()
	if hadInjector != (st.injector != nil || planInj) {
		return fmt.Errorf("closedloop: snapshot fault-injector presence (%v) does not match config (%v)",
			hadInjector, st.injector != nil || planInj)
	}
	if st.injector != nil {
		if err := st.injector.RestoreState(dec); err != nil {
			return fmt.Errorf("closedloop: fault injector: %w", err)
		}
	} else if planInj {
		if err := st.exec.RestoreState(dec); err != nil {
			return fmt.Errorf("closedloop: fault injector: %w", err)
		}
	}

	ctrl, ok := st.cfg.Controller.(snapshot.Snapshotter)
	if !ok {
		return fmt.Errorf("closedloop: controller %T does not support snapshot", st.cfg.Controller)
	}
	if err := ctrl.RestoreState(dec); err != nil {
		return fmt.Errorf("closedloop: controller: %w", err)
	}

	if err := restorePatient(dec, st.cfg.Patient); err != nil {
		return fmt.Errorf("closedloop: patient: %w", err)
	}

	st.step = step
	st.prevCGM = prevCGM
	st.prevIOB = prevIOB
	st.prevDelivered = prevDelivered
	st.lastVerdict = v
	st.tr.Samples = samples
	return nil
}

// snapshotPatient checkpoints the loop's physiology: a scalar patient
// directly, or one batched lane through its sim.LaneView.
func snapshotPatient(enc *snapshot.Encoder, p sim.Patient) error {
	switch t := p.(type) {
	case snapshot.Snapshotter:
		t.SnapshotState(enc)
		return nil
	case sim.LaneView:
		ls, ok := t.B.(snapshot.LaneSnapshotter)
		if !ok {
			return fmt.Errorf("closedloop: batch patient %T does not support snapshot", t.B)
		}
		ls.SnapshotLane(t.Lane, enc)
		return nil
	default:
		return fmt.Errorf("closedloop: patient %T does not support snapshot", p)
	}
}

func restorePatient(dec *snapshot.Decoder, p sim.Patient) error {
	switch t := p.(type) {
	case snapshot.Snapshotter:
		return t.RestoreState(dec)
	case sim.LaneView:
		ls, ok := t.B.(snapshot.LaneSnapshotter)
		if !ok {
			return fmt.Errorf("closedloop: batch patient %T does not support snapshot", t.B)
		}
		return ls.RestoreLane(t.Lane, dec)
	default:
		return fmt.Errorf("closedloop: patient %T does not support snapshot", p)
	}
}

// snapshotSample writes every trace.Sample field in declaration order.
func snapshotSample(enc *snapshot.Encoder, s *trace.Sample) {
	enc.Int(s.Step)
	enc.Float64(s.TimeMin)
	enc.Float64(s.BG)
	enc.Float64(s.CGM)
	enc.Float64(s.IOB)
	enc.Float64(s.BGPrime)
	enc.Float64(s.IOBPrime)
	enc.Float64(s.Rate)
	enc.Float64(s.Delivered)
	enc.Int(int(s.Action))
	enc.Bool(s.FaultActive)
	enc.Int(int(s.Hazard))
	enc.Bool(s.Alarm)
	enc.Int(int(s.AlarmHazard))
	enc.Bool(s.Mitigated)
}

func restoreSample(dec *snapshot.Decoder) trace.Sample {
	var s trace.Sample
	s.Step = dec.Int()
	s.TimeMin = dec.Float64()
	s.BG = dec.Float64()
	s.CGM = dec.Float64()
	s.IOB = dec.Float64()
	s.BGPrime = dec.Float64()
	s.IOBPrime = dec.Float64()
	s.Rate = dec.Float64()
	s.Delivered = dec.Float64()
	s.Action = trace.Action(dec.Int())
	s.FaultActive = dec.Bool()
	s.Hazard = trace.HazardType(dec.Int())
	s.Alarm = dec.Bool()
	s.AlarmHazard = trace.HazardType(dec.Int())
	s.Mitigated = dec.Bool()
	return s
}
