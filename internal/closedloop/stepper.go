package closedloop

import (
	"fmt"
	"math"

	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StepperOptions extend a Config for incremental (fleet) execution.
type StepperOptions struct {
	// Samples, when non-nil, becomes the trace's sample buffer — the
	// fleet engine recycles these through a sync.Pool so long-running
	// session churn does not allocate per run.
	Samples []trace.Sample
	// Sensor optionally transforms the clean CGM reading at time tMin
	// (e.g. a sensor.Model driven by a per-session RNG). Nil reads the
	// patient's CGM directly, matching Run.
	Sensor func(cleanCGM, tMin float64) float64
}

// Stepper executes a closed-loop simulation one control cycle at a time.
// It is the single implementation of the simulation loop: Run drives it
// to completion in one call, and the fleet engine interleaves many
// steppers as concurrent sessions, optionally splitting each cycle at
// the monitor decision (BeginStep / FinishStep) so one batched inference
// call can serve a whole shard.
//
// A cycle runs either as Step (the attached cfg.Monitor decides) or as
// BeginStep → FinishStep (the caller supplies the verdict, e.g. from a
// monitor.BatchMonitor). Both orders produce samples identical to Run.
type Stepper struct {
	cfg      Config
	opts     StepperOptions
	injector *fault.Injector
	exec     *fault.PlanExec  // plan-path injections, nil without a Plan
	exHost   sim.ExerciseHost // set only when the plan schedules exercise
	monIOB   *control.IOBTracker
	tr       *trace.Trace

	step          int
	prevCGM       float64
	prevIOB       float64
	prevDelivered float64

	lastVerdict Verdict

	pending  pendingStep
	finished bool
}

// pendingStep carries the half-completed cycle between BeginStep and
// FinishStep.
type pendingStep struct {
	active   bool
	sample   trace.Sample
	obs      Observation
	carb     float64 // plan-scheduled carbohydrate ingestion, g/min
	occluded bool    // plan-scheduled pump occlusion for this cycle
}

// NewStepper validates the config and prepares the run (resetting the
// patient, controller, and monitor, and arming the fault injector).
func NewStepper(cfg Config, opts StepperOptions) (*Stepper, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.Patient.Reset(cfg.InitialBG)
	cfg.Controller.Reset()
	if cfg.Monitor != nil {
		cfg.Monitor.Reset()
	}

	st := &Stepper{cfg: cfg, opts: opts}
	if cfg.Fault != nil {
		st.injector, err = fault.NewInjector(*cfg.Fault)
		if err != nil {
			return nil, fmt.Errorf("closedloop: %w", err)
		}
	}
	if cfg.Plan != nil {
		st.exec, err = cfg.Plan.NewExec()
		if err != nil {
			return nil, fmt.Errorf("closedloop: %w", err)
		}
		if cfg.Plan.HasExercise() {
			st.exHost, err = exerciseHost(cfg.Patient)
			if err != nil {
				return nil, err
			}
		}
	}

	curve, err := control.NewExponentialCurve(cfg.DIA, cfg.PeakT)
	if err != nil {
		return nil, fmt.Errorf("closedloop: monitor IOB curve: %w", err)
	}
	st.monIOB = control.NewIOBTracker(curve, cfg.Patient.Basal())

	// Attach the fault hook only once construction can no longer fail,
	// so an error return never leaves a stale perturbation on the
	// caller's controller (Finish detaches it on the success path).
	if st.injector != nil {
		cfg.Controller.SetPerturb(st.injector.Perturb)
	} else if st.exec != nil && st.exec.HasInjectors() {
		cfg.Controller.SetPerturb(st.exec.Perturb)
	}

	st.tr = &trace.Trace{
		PatientID: cfg.Patient.ID(),
		Platform:  cfg.Platform,
		InitialBG: cfg.InitialBG,
		CycleMin:  cfg.CycleMin,
		// Persist the scheduled basal: offline replay needs it to seed
		// the step-0 PrevRate and Observation.Basal exactly as the live
		// loop does below.
		Basal: cfg.Patient.Basal(),
	}
	if cfg.Fault != nil {
		st.tr.Fault = cfg.Fault.Info()
	}
	if cfg.Plan != nil {
		st.tr.Fault = cfg.Plan.FaultInfo()
	}
	if opts.Samples != nil {
		st.tr.Samples = opts.Samples[:0]
	} else {
		st.tr.Samples = make([]trace.Sample, 0, cfg.Steps)
	}

	st.prevCGM = math.NaN()
	st.prevDelivered = cfg.Patient.Basal()
	return st, nil
}

// Done reports whether every configured cycle has run.
func (st *Stepper) Done() bool { return st.step >= st.cfg.Steps }

// StepIndex returns the index of the next cycle to run.
func (st *Stepper) StepIndex() int { return st.step }

// LastSample returns the most recently completed cycle's sample.
func (st *Stepper) LastSample() (trace.Sample, bool) {
	if len(st.tr.Samples) == 0 {
		return trace.Sample{}, false
	}
	return st.tr.Samples[len(st.tr.Samples)-1], true
}

// LastVerdict returns the monitor verdict applied at the most recently
// completed cycle — including the margin and rule attribution that the
// trace sample does not carry — so telemetry consumers can read the
// monitor's single evaluation instead of running a second one.
func (st *Stepper) LastVerdict() (Verdict, bool) {
	if len(st.tr.Samples) == 0 {
		return Verdict{}, false
	}
	return st.lastVerdict, true
}

// CycleTime returns the simulation time (minutes) of the next cycle to
// run — the timestamp a batched sensor sweep must stamp on this
// session's reading.
func (st *Stepper) CycleTime() float64 { return float64(st.step) * st.cfg.CycleMin }

// CleanCGM returns the patient's current noise-free sensor glucose —
// the input a batched sensor sweep feeds through its error model before
// BeginStepSensed.
func (st *Stepper) CleanCGM() float64 { return st.cfg.Patient.CGM() }

// BeginStep advances the cycle to its monitor decision point: it reads
// the sensors, lets the controller decide, and returns the monitor's
// observation. The caller must follow with FinishStep. Calling BeginStep
// on a finished or already-pending stepper panics (engine bug).
func (st *Stepper) BeginStep() Observation {
	cgm := st.cfg.Patient.CGM()
	if st.opts.Sensor != nil {
		cgm = st.opts.Sensor(cgm, st.CycleTime())
	}
	return st.BeginStepSensed(cgm)
}

// BeginStepSensed is BeginStep for engines that run the sensor channel
// themselves: cgm is the already-sensed reading for this cycle (e.g.
// from a sensor.BatchModel sweep over the shard). The caller must
// follow with FinishStep or FinishStepDeferred.
func (st *Stepper) BeginStepSensed(cgm float64) Observation {
	if st.Done() || st.pending.active {
		panic("closedloop: BeginStep out of order")
	}
	cfg := &st.cfg
	if pl := cfg.Plan; pl != nil && pl.HasCGMDisturbance() {
		// Dropout freezes the loop at the previous sensed value (which
		// already carries any bias applied then); outside a dropout the
		// bias ramp adds on top of the sensed reading.
		if pl.Dropout(st.step) && !math.IsNaN(st.prevCGM) {
			cgm = st.prevCGM
		} else {
			cgm += pl.Bias(st.step)
		}
	}
	if st.exHost != nil {
		st.exHost.SetExercise(cfg.Plan.Exercise(st.step))
	}
	now := st.CycleTime()
	iob := st.monIOB.IOB()

	bgPrime := 0.0
	if !math.IsNaN(st.prevCGM) {
		bgPrime = (cgm - st.prevCGM) / cfg.CycleMin
	}
	iobPrime := 0.0
	if st.step > 0 {
		iobPrime = (iob - st.prevIOB) / cfg.CycleMin
	}

	if st.injector != nil {
		st.injector.BeginStep(st.step)
	} else if st.exec != nil {
		st.exec.BeginStep(st.step)
	}
	out := cfg.Controller.Decide(control.Input{
		TimeMin:  now,
		CGM:      cgm,
		CycleMin: cfg.CycleMin,
	})
	rate := clampRate(out.RateUPerH, cfg.Pump)
	action := trace.ClassifyAction(rate, cfg.Patient.Basal())

	sample := trace.Sample{
		Step:    st.step,
		TimeMin: now,
		BG:      cfg.Patient.BG(),
		CGM:     cgm,
		IOB:     iob,
		BGPrime: bgPrime, IOBPrime: iobPrime,
		Rate:   rate,
		Action: action,
	}
	if cfg.Fault != nil {
		sample.FaultActive = cfg.Fault.Active(st.step)
	} else if cfg.Plan != nil {
		sample.FaultActive = cfg.Plan.Active(st.step)
	}
	obs := Observation{
		Step: st.step, TimeMin: now, CycleMin: cfg.CycleMin,
		CGM: cgm, BGPrime: bgPrime, IOB: iob, IOBPrime: iobPrime,
		Rate: rate, PrevRate: st.prevDelivered, Action: action,
		Basal: cfg.Patient.Basal(),
	}
	st.pending = pendingStep{active: true, sample: sample, obs: obs}
	if pl := cfg.Plan; pl != nil {
		st.pending.carb = pl.CarbRate(st.step)
		st.pending.occluded = pl.Occluded(st.step)
	}
	st.prevCGM = cgm
	st.prevIOB = iob
	return obs
}

// FinishStep applies the verdict for the pending cycle — alarm
// annotation and (when enabled) Algorithm 1 mitigation, optionally
// scaled by the verdict's robustness margin — then delivers insulin and
// advances the patient, controller, and IOB model.
func (st *Stepper) FinishStep(v Verdict) {
	carb := st.pending.carb
	applied := st.FinishStepDeferred(v)
	st.cfg.Patient.Step(applied, carb, st.cfg.CycleMin)
}

// PendingCarb returns the carbohydrate ingestion rate (g/min) the plan
// schedules for the pending cycle — the value a deferred engine must
// feed its StepLanes sweep alongside the applied insulin. Zero without
// a plan or outside a meal window.
func (st *Stepper) PendingCarb() float64 { return st.pending.carb }

// FinishStepDeferred is FinishStep for engines that advance physiology
// themselves: it applies the verdict, records the delivery with the
// controller and IOB model, and returns the infusion rate (U/h) the
// patient actually receives — but does NOT step the patient. The caller
// must advance this session's physiology by CycleMin minutes at the
// returned rate and PendingCarb (e.g. through one
// sim.BatchPatient.StepLanes sweep) before the next BeginStep.
//
// Under a plan-scheduled pump occlusion the returned rate is 0 while
// the trace, controller, and IOB model all record the commanded
// delivery — the loop believes its insulin went in, the patient
// receives none.
func (st *Stepper) FinishStepDeferred(v Verdict) float64 {
	if !st.pending.active {
		panic("closedloop: FinishStep without BeginStep")
	}
	cfg := &st.cfg
	s := st.pending.sample
	s.Alarm = v.Alarm
	s.AlarmHazard = v.Hazard
	st.lastVerdict = v

	delivered := s.Rate
	if v.Alarm && cfg.Mitigation.Enabled {
		corrective := mitigate(v.Hazard, cfg.Mitigation, cfg.Pump)
		if cfg.Mitigation.Corrective != nil {
			if r, ok := cfg.Mitigation.Corrective(v.Hazard, st.pending.obs); ok {
				corrective = clampRate(r, cfg.Pump)
			}
		}
		delivered = corrective
		if cfg.Mitigation.ScaleByMargin && v.Margin < 0 {
			f := -v.Margin / cfg.Mitigation.MarginRef
			if f > 1 {
				f = 1
			}
			delivered = clampRate(s.Rate+f*(corrective-s.Rate), cfg.Pump)
		}
		s.Mitigated = true
	}
	s.Delivered = delivered
	st.tr.Samples = append(st.tr.Samples, s)

	cfg.Controller.RecordDelivery(delivered, cfg.CycleMin)
	st.monIOB.Record(delivered, cfg.CycleMin)

	st.prevDelivered = delivered
	applied := delivered
	if st.pending.occluded {
		applied = 0
	}
	st.pending.active = false
	st.step++
	return applied
}

// MonitorVerdict evaluates the attached monitor (if any) on the
// observation, for engines that drive BeginStepSensed/FinishStepDeferred
// directly instead of Step.
func (st *Stepper) MonitorVerdict(obs Observation) Verdict {
	if st.cfg.Monitor == nil {
		return Verdict{}
	}
	return st.cfg.Monitor.Step(obs)
}

// Step runs one full cycle, consulting cfg.Monitor when attached.
func (st *Stepper) Step() {
	obs := st.BeginStep()
	st.FinishStep(st.MonitorVerdict(obs))
}

// Finish labels the trace and returns it, releasing the fault-injection
// hook. The stepper must not be used afterwards.
func (st *Stepper) Finish() *trace.Trace {
	if st.finished {
		panic("closedloop: Finish called twice")
	}
	st.finished = true
	if st.injector != nil || (st.exec != nil && st.exec.HasInjectors()) {
		st.cfg.Controller.SetPerturb(nil)
	}
	st.cfg.Labeler.Label(st.tr)
	return st.tr
}

// exerciseHost resolves the patient's exercise hook: the model itself
// for scalar patients, the lane's batch (which must support per-lane
// exercise) for a sim.LaneView.
func exerciseHost(p Patient) (sim.ExerciseHost, error) {
	if lv, ok := p.(sim.LaneView); ok {
		if _, ok := lv.B.(sim.BatchExerciseHost); !ok {
			return nil, fmt.Errorf("closedloop: batch patient %T does not support exercise", lv.B)
		}
		return lv, nil
	}
	if h, ok := p.(sim.ExerciseHost); ok {
		return h, nil
	}
	return nil, fmt.Errorf("closedloop: patient %T does not support exercise", p)
}
