package monitor

import (
	"fmt"

	"repro/internal/ml"
)

// BatchMonitor evaluates one control cycle for many concurrent sessions
// in a single call, amortizing model weight traffic across the batch
// (see internal/ml's batched inference). A BatchMonitor owns per-lane
// state and scratch buffers: create one per fleet shard; the wrapped
// model weights are shared and only read.
//
// Verdicts are identical to running the corresponding per-session
// Monitor on each lane.
type BatchMonitor interface {
	Name() string
	// ResetLanes prepares n independent session lanes, clearing any
	// per-lane state.
	ResetLanes(n int)
	// ResetLane clears one lane's state (a session restarting in place).
	ResetLane(lane int)
	// StepBatch evaluates obs[k] as the next cycle of session lane
	// lanes[k], writing the verdict into out[k].
	StepBatch(lanes []int, obs []Observation, out []Verdict)
}

// featuresInto writes the Eq. 7 feature vector into dst (len FeatureDim).
func featuresInto(dst []float64, obs Observation) {
	dst[0] = obs.CGM
	dst[1] = obs.BGPrime
	dst[2] = obs.IOB
	dst[3] = obs.IOBPrime
	dst[4] = obs.Rate
	dst[5] = float64(obs.Action)
}

// BatchML wraps a point-in-time batch classifier (DT, MLP) as a
// BatchMonitor. It is stateless across cycles, so lanes only size the
// scratch buffers.
type BatchML struct {
	name  string
	clf   ml.BatchClassifier
	flat  []float64
	feats [][]float64
	proba []float64
}

var _ BatchMonitor = (*BatchML)(nil)

// NewBatchML wraps a trained batch classifier.
func NewBatchML(name string, clf ml.BatchClassifier) (*BatchML, error) {
	if clf == nil {
		return nil, fmt.Errorf("monitor: nil batch classifier")
	}
	return &BatchML{name: name, clf: clf}, nil
}

// Name implements BatchMonitor.
func (b *BatchML) Name() string { return b.name }

// ResetLanes implements BatchMonitor.
func (b *BatchML) ResetLanes(n int) { b.ensure(n) }

// ResetLane implements BatchMonitor.
func (b *BatchML) ResetLane(int) {}

func (b *BatchML) ensure(n int) {
	if n <= len(b.feats) {
		return
	}
	b.flat = make([]float64, n*FeatureDim)
	b.feats = make([][]float64, n)
	for i := range b.feats {
		b.feats[i] = b.flat[i*FeatureDim : (i+1)*FeatureDim]
	}
	b.proba = make([]float64, n*b.clf.Classes())
}

// StepBatch implements BatchMonitor.
func (b *BatchML) StepBatch(lanes []int, obs []Observation, out []Verdict) {
	n := len(obs)
	if n == 0 {
		return
	}
	b.ensure(n)
	for k, o := range obs {
		featuresInto(b.feats[k], o)
	}
	b.clf.PredictProbaBatchInto(b.feats[:n], b.proba)
	classes := b.clf.Classes()
	for k := 0; k < n; k++ {
		out[k] = probaToVerdict(b.proba[k*classes:(k+1)*classes], classes)
	}
}

// seqLane is one session's sliding feature window.
type seqLane struct {
	frames [][]float64 // ring of window frames
	n      int         // frames filled so far
	head   int         // index of the oldest frame
}

// BatchSequence wraps a windowed batch classifier (LSTM) as a
// BatchMonitor, keeping a sliding feature window per lane like
// SequenceMonitor does per session.
type BatchSequence struct {
	name   string
	clf    ml.BatchSequenceClassifier
	window int
	lanes  []seqLane

	// Per-call scratch.
	wins  [][][]float64
	ready []int
	proba []float64
	views [][]float64 // window x lanes ordered-frame views, flattened
}

var _ BatchMonitor = (*BatchSequence)(nil)

// NewBatchSequence wraps a trained batch sequence classifier with
// window k.
func NewBatchSequence(name string, clf ml.BatchSequenceClassifier, window int) (*BatchSequence, error) {
	if clf == nil {
		return nil, fmt.Errorf("monitor: nil batch sequence classifier")
	}
	if window <= 0 {
		return nil, fmt.Errorf("monitor: invalid window %d", window)
	}
	return &BatchSequence{name: name, clf: clf, window: window}, nil
}

// Name implements BatchMonitor.
func (b *BatchSequence) Name() string { return b.name }

// ResetLanes implements BatchMonitor.
func (b *BatchSequence) ResetLanes(n int) {
	b.lanes = make([]seqLane, n)
	for i := range b.lanes {
		frames := make([][]float64, b.window)
		backing := make([]float64, b.window*FeatureDim)
		for j := range frames {
			frames[j] = backing[j*FeatureDim : (j+1)*FeatureDim]
		}
		b.lanes[i] = seqLane{frames: frames}
	}
	b.wins = make([][][]float64, 0, n)
	b.ready = make([]int, 0, n)
	b.proba = make([]float64, n*b.clf.Classes())
	b.views = make([][]float64, n*b.window)
}

// ResetLane implements BatchMonitor.
func (b *BatchSequence) ResetLane(lane int) {
	b.lanes[lane].n = 0
	b.lanes[lane].head = 0
}

// StepBatch implements BatchMonitor. Lanes whose window has not filled
// yet stay silent, matching SequenceMonitor.
func (b *BatchSequence) StepBatch(lanes []int, obs []Observation, out []Verdict) {
	b.wins = b.wins[:0]
	b.ready = b.ready[:0]
	for k, o := range obs {
		l := &b.lanes[lanes[k]]
		// Overwrite the oldest frame.
		slot := (l.head + l.n) % b.window
		if l.n == b.window {
			slot = l.head
			l.head = (l.head + 1) % b.window
		} else {
			l.n++
		}
		featuresInto(l.frames[slot], o)
		out[k] = Verdict{}
		if l.n < b.window {
			continue
		}
		// Ordered view of the ring.
		view := b.views[len(b.wins)*b.window : (len(b.wins)+1)*b.window]
		for j := 0; j < b.window; j++ {
			view[j] = l.frames[(l.head+j)%b.window]
		}
		b.wins = append(b.wins, view)
		b.ready = append(b.ready, k)
	}
	if len(b.wins) == 0 {
		return
	}
	b.clf.PredictProbaSeqBatchInto(b.wins, b.proba)
	classes := b.clf.Classes()
	for i, k := range b.ready {
		out[k] = probaToVerdict(b.proba[i*classes:(i+1)*classes], classes)
	}
}
