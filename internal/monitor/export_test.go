package monitor

import (
	"fmt"
	"testing"
)

// CaptureReplayWarnings redirects Replay's warning hook into a captured
// slice for the duration of the test.
func CaptureReplayWarnings(t *testing.T) *[]string {
	t.Helper()
	var captured []string
	prev := replayWarnf
	replayWarnf = func(format string, args ...any) {
		captured = append(captured, fmt.Sprintf(format, args...))
	}
	t.Cleanup(func() { replayWarnf = prev })
	return &captured
}
