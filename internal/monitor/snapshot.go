// Snapshot/restore of monitor state. Each monitor serializes exactly
// the state that shapes its future verdicts; derived caches (last
// verdicts, fired-rule scratch) are recomputed on the next step and are
// not part of the encoding. The scalar and batched variants of each
// monitor emit identical bytes for the same logical state, so a session
// can be snapshotted from a batched lane and restored into a scalar
// monitor or vice versa.

package monitor

import (
	"fmt"

	"repro/internal/scs"
	"repro/internal/snapshot"
)

var (
	_ snapshot.Snapshotter     = (*ContextAware)(nil)
	_ snapshot.LaneSnapshotter = (*BatchContextAware)(nil)
	_ snapshot.Snapshotter     = (*Guideline)(nil)
	_ snapshot.Snapshotter     = (*MLMonitor)(nil)
	_ snapshot.LaneSnapshotter = (*BatchML)(nil)
	_ snapshot.Snapshotter     = (*SequenceMonitor)(nil)
	_ snapshot.LaneSnapshotter = (*BatchSequence)(nil)
	_ snapshot.Snapshotter     = (*MPC)(nil)
)

// SnapshotState implements snapshot.Snapshotter: the compiled sampling
// period followed by the rule-stream state.
func (m *ContextAware) SnapshotState(enc *snapshot.Encoder) {
	enc.Float64(m.dt)
	m.streams.SnapshotState(enc)
}

// RestoreState implements snapshot.Snapshotter. If the snapshot was
// taken at a different sampling period than this monitor is compiled
// for, the rule streams are recompiled at the stored period first, so
// temporal windows keep their original spans.
func (m *ContextAware) RestoreState(dec *snapshot.Decoder) error {
	dt := dec.Float64()
	if err := dec.Err(); err != nil {
		return err
	}
	if dt <= 0 {
		return fmt.Errorf("monitor: invalid restored sampling period %v", dt)
	}
	if dt != m.dt {
		streams, err := scs.NewStreamSet(m.rules, m.thresholds, m.params, dt)
		if err != nil {
			return fmt.Errorf("monitor: recompile at restored dt=%v: %w", dt, err)
		}
		m.dt = dt
		m.streams = streams
	}
	if err := m.streams.RestoreState(dec); err != nil {
		return err
	}
	m.last = scs.StreamVerdict{}
	m.lastOK = false
	m.lastFired = m.lastFired[:0]
	return nil
}

// SnapshotLane implements snapshot.LaneSnapshotter, emitting the same
// bytes ContextAware.SnapshotState would for the lane's logical state.
func (m *BatchContextAware) SnapshotLane(lane int, enc *snapshot.Encoder) {
	enc.Float64(m.dt)
	m.streams.SnapshotLane(lane, enc)
}

// RestoreLane implements snapshot.LaneSnapshotter. A sampling-period
// mismatch recompiles the whole batch only while no lane holds state;
// once any lane is live the periods must agree, because every lane of a
// batch shares one compiled rule set.
func (m *BatchContextAware) RestoreLane(lane int, dec *snapshot.Decoder) error {
	dt := dec.Float64()
	if err := dec.Err(); err != nil {
		return err
	}
	if dt <= 0 {
		return fmt.Errorf("monitor: invalid restored sampling period %v", dt)
	}
	if dt != m.dt {
		if m.streams != nil && m.streams.Len() > 0 {
			return fmt.Errorf("monitor: lane snapshot at dt=%v cannot join a live batch compiled at dt=%v", dt, m.dt)
		}
		m.dt = dt
		m.rebuild()
	}
	if err := m.streams.RestoreLane(lane, dec); err != nil {
		return err
	}
	m.last[lane] = scs.StreamVerdict{}
	m.lastOK[lane] = false
	m.lastFired[lane] = m.lastFired[lane][:0]
	return nil
}

// SnapshotState implements snapshot.Snapshotter: the CGM history point
// and the two duration timers (NaN while inactive, preserved exactly).
func (m *Guideline) SnapshotState(enc *snapshot.Encoder) {
	enc.Float64(m.prevCGM)
	enc.Bool(m.havePrev)
	enc.Float64(m.belowSince)
	enc.Float64(m.aboveSince)
}

// RestoreState implements snapshot.Snapshotter.
func (m *Guideline) RestoreState(dec *snapshot.Decoder) error {
	prevCGM := dec.Float64()
	havePrev := dec.Bool()
	belowSince := dec.Float64()
	aboveSince := dec.Float64()
	if err := dec.Err(); err != nil {
		return err
	}
	m.prevCGM = prevCGM
	m.havePrev = havePrev
	m.belowSince = belowSince
	m.aboveSince = aboveSince
	return nil
}

// SnapshotState implements snapshot.Snapshotter. A point-in-time
// classifier holds no evolving state, so the encoding is empty — which
// also makes it byte-compatible with a BatchML lane.
func (m *MLMonitor) SnapshotState(enc *snapshot.Encoder) {}

// RestoreState implements snapshot.Snapshotter.
func (m *MLMonitor) RestoreState(dec *snapshot.Decoder) error { return nil }

// SnapshotLane implements snapshot.LaneSnapshotter: empty, matching
// MLMonitor.SnapshotState.
func (b *BatchML) SnapshotLane(lane int, enc *snapshot.Encoder) {}

// RestoreLane implements snapshot.LaneSnapshotter.
func (b *BatchML) RestoreLane(lane int, dec *snapshot.Decoder) error { return nil }

// SnapshotState implements snapshot.Snapshotter: the sliding feature
// window, oldest frame first.
func (m *SequenceMonitor) SnapshotState(enc *snapshot.Encoder) {
	enc.Int(len(m.buf))
	for _, frame := range m.buf {
		for _, v := range frame {
			enc.Float64(v)
		}
	}
}

// RestoreState implements snapshot.Snapshotter.
func (m *SequenceMonitor) RestoreState(dec *snapshot.Decoder) error {
	n := dec.Count(8 * FeatureDim)
	if err := dec.Err(); err != nil {
		return err
	}
	if n > m.window {
		return fmt.Errorf("monitor: restored window holds %d frames, capacity %d", n, m.window)
	}
	buf := make([][]float64, n)
	for i := range buf {
		frame := make([]float64, FeatureDim)
		for j := range frame {
			frame[j] = dec.Float64()
		}
		buf[i] = frame
	}
	if err := dec.Err(); err != nil {
		return err
	}
	m.buf = buf
	return nil
}

// SnapshotLane implements snapshot.LaneSnapshotter, emitting the lane's
// window oldest-first — the same bytes SequenceMonitor.SnapshotState
// produces for the equivalent scalar window.
func (b *BatchSequence) SnapshotLane(lane int, enc *snapshot.Encoder) {
	l := &b.lanes[lane]
	enc.Int(l.n)
	for k := 0; k < l.n; k++ {
		for _, v := range l.frames[(l.head+k)%b.window] {
			enc.Float64(v)
		}
	}
}

// RestoreLane implements snapshot.LaneSnapshotter.
func (b *BatchSequence) RestoreLane(lane int, dec *snapshot.Decoder) error {
	n := dec.Count(8 * FeatureDim)
	if err := dec.Err(); err != nil {
		return err
	}
	if n > b.window {
		return fmt.Errorf("monitor: restored window holds %d frames, capacity %d", n, b.window)
	}
	l := &b.lanes[lane]
	l.head = 0
	l.n = n
	for k := 0; k < n; k++ {
		for j := range l.frames[k] {
			l.frames[k][j] = dec.Float64()
		}
	}
	return dec.Err()
}

// SnapshotState implements snapshot.Snapshotter: the monitor-side
// insulin compartments.
func (m *MPC) SnapshotState(enc *snapshot.Encoder) {
	enc.Float64(m.isc)
	enc.Float64(m.ip)
	enc.Float64(m.ieff)
}

// RestoreState implements snapshot.Snapshotter.
func (m *MPC) RestoreState(dec *snapshot.Decoder) error {
	isc := dec.Float64()
	ip := dec.Float64()
	ieff := dec.Float64()
	if err := dec.Err(); err != nil {
		return err
	}
	m.isc, m.ip, m.ieff = isc, ip, ieff
	m.initialized = true
	return nil
}
