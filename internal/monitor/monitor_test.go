package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/scs"
	"repro/internal/trace"
)

func newCAWT(t *testing.T, th scs.Thresholds) *ContextAware {
	t.Helper()
	m, err := NewCAWT(scs.TableI(), th, scs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCAWTConstructionValidation(t *testing.T) {
	if _, err := NewCAWT(nil, nil, scs.Params{}); err == nil {
		t.Error("empty rules should fail")
	}
	rules := scs.TableI()
	th := scs.Defaults(rules)
	delete(th, 7)
	if _, err := NewCAWT(rules, th, scs.Params{}); err == nil {
		t.Error("missing threshold should fail")
	}
}

func TestCAWTFiresOnRule1Context(t *testing.T) {
	th := scs.Defaults(scs.TableI())
	th[1] = 2.5
	m := newCAWT(t, th)
	v := m.Step(Observation{
		CGM: 180, BGPrime: 1.5, IOB: 1.0, IOBPrime: -0.01,
		Action: trace.ActionDecrease,
	})
	if !v.Alarm || v.Hazard != trace.HazardH2 {
		t.Errorf("verdict %+v, want H2 alarm", v)
	}
	fired := m.FiredRules()
	if len(fired) == 0 || fired[0] != 1 {
		t.Errorf("fired rules %v, want [1]", fired)
	}
}

func TestCAWTSilentInSafeContext(t *testing.T) {
	m := newCAWT(t, scs.Defaults(scs.TableI()))
	v := m.Step(Observation{
		CGM: 110, BGPrime: 0.1, IOB: 1.0, IOBPrime: 0,
		Action: trace.ActionKeep,
	})
	if v.Alarm {
		t.Errorf("false alarm in euglycemic steady state: %+v (rules %v)", v, m.FiredRules())
	}
}

func TestCAWTH1WinsTies(t *testing.T) {
	// Construct thresholds so both an H1 and H2 rule could fire is not
	// physically possible (contexts are disjoint on BG side), so check
	// rule-10 H1 verdicts directly.
	th := scs.Defaults(scs.TableI())
	m := newCAWT(t, th)
	v := m.Step(Observation{
		CGM: 60, BGPrime: -1, IOB: 3, IOBPrime: 0.01,
		Action: trace.ActionKeep, // below β21=70 without stopping
	})
	if !v.Alarm || v.Hazard != trace.HazardH1 {
		t.Errorf("verdict %+v, want H1", v)
	}
}

func TestCAWOTUsesDefaults(t *testing.T) {
	m, err := NewCAWOT(scs.TableI(), scs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "CAWOT" {
		t.Errorf("name %q", m.Name())
	}
	if m.Thresholds()[10] != 70 {
		t.Errorf("CAWOT β21 = %v, want default 70", m.Thresholds()[10])
	}
}

func TestGuidelineRules(t *testing.T) {
	g, err := NewGuideline(GuidelineConfig{Lambda10: 80, Lambda90: 170})
	if err != nil {
		t.Fatal(err)
	}
	// φ1 low.
	if v := g.Step(Observation{TimeMin: 0, CGM: 60}); !v.Alarm || v.Hazard != trace.HazardH1 {
		t.Errorf("low BG verdict %+v", v)
	}
	g.Reset()
	// φ1 high.
	if v := g.Step(Observation{TimeMin: 0, CGM: 200}); !v.Alarm || v.Hazard != trace.HazardH2 {
		t.Errorf("high BG verdict %+v", v)
	}
	g.Reset()
	// φ2 fast fall.
	g.Step(Observation{TimeMin: 0, CGM: 150})
	if v := g.Step(Observation{TimeMin: 5, CGM: 140}); !v.Alarm || v.Hazard != trace.HazardH1 {
		t.Errorf("fast-fall verdict %+v", v)
	}
	g.Reset()
	// φ2 fast rise.
	g.Step(Observation{TimeMin: 0, CGM: 150})
	if v := g.Step(Observation{TimeMin: 5, CGM: 156}); !v.Alarm || v.Hazard != trace.HazardH2 {
		t.Errorf("fast-rise verdict %+v", v)
	}
	g.Reset()
	// In-range, gentle drift: silent.
	g.Step(Observation{TimeMin: 0, CGM: 120})
	if v := g.Step(Observation{TimeMin: 5, CGM: 121}); v.Alarm {
		t.Errorf("false alarm %+v", v)
	}
}

func TestGuidelineRecoveryDeadline(t *testing.T) {
	g, err := NewGuideline(GuidelineConfig{Lambda10: 90, Lambda90: 170, AlphaMin: 25})
	if err != nil {
		t.Fatal(err)
	}
	// BG below λ10=90 (but above φ1's 70, falling slower than 5/cycle):
	// must alarm only after 25 minutes without recovery.
	times := []float64{0, 5, 10, 15, 20, 25, 30}
	var alarmAt float64 = -1
	for _, tm := range times {
		v := g.Step(Observation{TimeMin: tm, CGM: 85 - tm/10})
		if v.Alarm {
			alarmAt = tm
			break
		}
	}
	if alarmAt != 25 {
		t.Errorf("φ3 alarm at %v min, want 25", alarmAt)
	}
	// Recovery above λ10 resets the timer.
	g.Reset()
	g.Step(Observation{TimeMin: 0, CGM: 85})
	g.Step(Observation{TimeMin: 5, CGM: 92}) // recovered
	if v := g.Step(Observation{TimeMin: 30, CGM: 88}); v.Alarm {
		t.Error("timer should reset after recovery")
	}
}

func TestGuidelineValidation(t *testing.T) {
	if _, err := NewGuideline(GuidelineConfig{BGLow: 200, BGHigh: 100}); err == nil {
		t.Error("inverted BG range should fail")
	}
	if _, err := NewGuideline(GuidelineConfig{Lambda10: 180, Lambda90: 100}); err == nil {
		t.Error("inverted percentiles should fail")
	}
}

func TestPercentilesFromTraces(t *testing.T) {
	tr := &trace.Trace{CycleMin: 5}
	for i := 0; i < 100; i++ {
		tr.Samples = append(tr.Samples, trace.Sample{Step: i, CGM: 100 + float64(i)})
	}
	l10, l90, err := PercentilesFromTraces([]*trace.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if l10 < 105 || l10 > 115 || l90 < 185 || l90 > 195 {
		t.Errorf("percentiles %v/%v", l10, l90)
	}
	if _, _, err := PercentilesFromTraces(nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestMPCPredictsHypoFromOverdose(t *testing.T) {
	m, err := NewMPC(MPCConfig{Basal: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	// Sustained massive rate: as the monitor's insulin model charges up,
	// the projection must cross below 70 within a couple of hours.
	var v Verdict
	for i := 0; i < 24 && !v.Alarm; i++ {
		v = m.Step(Observation{TimeMin: float64(i) * 5, CGM: 100, Rate: 20, CycleMin: 5})
	}
	if !v.Alarm || v.Hazard != trace.HazardH1 {
		t.Errorf("verdict %+v, want H1 (overdose projected)", v)
	}
}

func TestMPCPredictsHyperFromSuspension(t *testing.T) {
	m, err := NewMPC(MPCConfig{Basal: 1.3, HorizonMin: 120})
	if err != nil {
		t.Fatal(err)
	}
	// Zero insulin with BG already high: projects above 180. Feed a few
	// suspended cycles so the monitor's insulin state decays.
	var v Verdict
	for i := 0; i < 12; i++ {
		v = m.Step(Observation{TimeMin: float64(i) * 5, CGM: 180, Rate: 0, CycleMin: 5})
		if v.Alarm {
			break
		}
	}
	if !v.Alarm || v.Hazard != trace.HazardH2 {
		t.Errorf("verdict %+v, want H2 (suspension projected)", v)
	}
}

func TestMPCSilentAtSteadyState(t *testing.T) {
	m, err := NewMPC(MPCConfig{Basal: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	v := m.Step(Observation{CGM: 120, Rate: 1.3, CycleMin: 5})
	if v.Alarm {
		t.Errorf("false alarm at steady state: %+v", v)
	}
}

func TestMPCValidation(t *testing.T) {
	if _, err := NewMPC(MPCConfig{}); err == nil {
		t.Error("missing basal should fail")
	}
}

func TestMLMonitorBinaryAndMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Binary: class 1 when CGM > 200.
	var X [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		cgm := 80 + rng.Float64()*220
		obs := Observation{CGM: cgm, Rate: 1, Action: trace.ActionKeep}
		X = append(X, Features(obs))
		if cgm > 200 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	tree, err := ml.FitTree(X, y, ml.TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMLMonitor("DT", tree)
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Step(Observation{CGM: 250, Rate: 1, Action: trace.ActionKeep}); !v.Alarm {
		t.Error("DT monitor should alarm at CGM 250")
	}
	if v := m.Step(Observation{CGM: 120, Rate: 1, Action: trace.ActionKeep}); v.Alarm {
		t.Error("DT monitor should stay silent at CGM 120")
	}
	if _, err := NewMLMonitor("nil", nil); err == nil {
		t.Error("nil classifier should fail")
	}
}

func TestSequenceMonitorWindowing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Trend data over the monitor's feature vector.
	var X [][][]float64
	var y []int
	for i := 0; i < 200; i++ {
		up := rng.Intn(2) == 1
		win := make([][]float64, 6)
		base := 100 + rng.Float64()*50
		for k := range win {
			v := base - float64(k)*5
			if up {
				v = base + float64(k)*5
			}
			win[k] = Features(Observation{CGM: v, Rate: 1, Action: trace.ActionKeep})
		}
		X = append(X, win)
		if up {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	lstm, err := ml.FitLSTM(X, y, ml.LSTMConfig{Units: []int{8}, Epochs: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSequenceMonitor("LSTM", lstm, 6)
	if err != nil {
		t.Fatal(err)
	}
	// First 5 observations: silent (window not full), regardless of content.
	for i := 0; i < 5; i++ {
		if v := m.Step(Observation{CGM: 300 + float64(i)*10, Rate: 1, Action: trace.ActionKeep}); v.Alarm {
			t.Fatalf("alarm before window filled (step %d)", i)
		}
	}
	// Window full now: rising sequence should classify as 1 -> alarm.
	v := m.Step(Observation{CGM: 360, Rate: 1, Action: trace.ActionKeep})
	if !v.Alarm {
		t.Error("rising window should alarm")
	}
	m.Reset()
	if len(m.buf) != 0 {
		t.Error("Reset should clear the window")
	}
	if _, err := NewSequenceMonitor("x", lstm, 0); err == nil {
		t.Error("bad window should fail")
	}
}

func TestTrainingDataLabels(t *testing.T) {
	tr := &trace.Trace{CycleMin: 5}
	for i := 0; i < 10; i++ {
		s := trace.Sample{Step: i, CGM: 150, Action: trace.ActionKeep}
		if i >= 7 {
			s.Hazard = trace.HazardH2
		}
		tr.Samples = append(tr.Samples, s)
	}
	X, y := TrainingData([]*trace.Trace{tr}, false)
	if len(X) != 10 || len(y) != 10 {
		t.Fatalf("sizes %d/%d", len(X), len(y))
	}
	// Every sample before a future hazard is positive per Eq. 7.
	for i := 0; i < 8; i++ {
		if y[i] != 1 {
			t.Errorf("sample %d label %d, want 1 (hazard at t'>=t)", i, y[i])
		}
	}
	// Multi-class labels carry the hazard type.
	_, ym := TrainingData([]*trace.Trace{tr}, true)
	if ym[0] != int(trace.HazardH2) {
		t.Errorf("multi-class label %d, want %d", ym[0], int(trace.HazardH2))
	}
}

func TestSequenceTrainingDataShape(t *testing.T) {
	tr := &trace.Trace{CycleMin: 5}
	for i := 0; i < 20; i++ {
		tr.Samples = append(tr.Samples, trace.Sample{Step: i, CGM: 120})
	}
	X, y := SequenceTrainingData([]*trace.Trace{tr}, 6, false)
	if len(X) != 15 { // 20 - 6 + 1
		t.Fatalf("%d windows, want 15", len(X))
	}
	if len(X[0]) != 6 || len(X[0][0]) != FeatureDim {
		t.Errorf("window shape %dx%d", len(X[0]), len(X[0][0]))
	}
	for _, label := range y {
		if label != 0 {
			t.Error("hazard-free trace should have zero labels")
		}
	}
}

func TestReplayAndAnnotate(t *testing.T) {
	tr := &trace.Trace{CycleMin: 5}
	for i := 0; i < 5; i++ {
		tr.Samples = append(tr.Samples, trace.Sample{
			Step: i, CGM: 250, Rate: 1, Action: trace.ActionKeep,
		})
	}
	g, err := NewGuideline(GuidelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := Replay(g, tr)
	if len(verdicts) != 5 {
		t.Fatalf("%d verdicts", len(verdicts))
	}
	for i, v := range verdicts {
		if !v.Alarm {
			t.Errorf("step %d: no alarm at CGM 250", i)
		}
	}
	Annotate(g, tr)
	if !tr.Samples[0].Alarm || tr.Samples[0].AlarmHazard != trace.HazardH2 {
		t.Error("Annotate should write alarms into samples")
	}
}
