package monitor

import (
	"fmt"
	"sort"

	"repro/internal/scs"
	"repro/internal/trace"
)

// ContextAwareLegacy is the pre-streaming context-aware monitor: it
// re-evaluates every Table I rule eagerly per step via Rule.Violated.
//
// Deprecated: ContextAware now evaluates the same rules through one
// incremental scs.StreamSet, with bit-identical alarms and hazards (the
// randomized differential tests enforce this) plus margins and rule
// attribution the eager path cannot provide. ContextAwareLegacy exists
// only as the differential-testing oracle and the BenchmarkCAWTStep
// baseline; do not wire it into new code.
type ContextAwareLegacy struct {
	name       string
	rules      []scs.Rule
	thresholds scs.Thresholds
	params     scs.Params

	lastFired []int // rule IDs fired at the last step (diagnostics)
}

var _ Monitor = (*ContextAwareLegacy)(nil)

// NewContextAwareLegacy builds the eager evaluator over the same inputs
// as NewCAWT/NewCAWOT (nil thresholds select the rules' defaults).
func NewContextAwareLegacy(name string, rules []scs.Rule, th scs.Thresholds, p scs.Params) (*ContextAwareLegacy, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("monitor: %s needs at least one rule", name)
	}
	if th == nil {
		th = scs.Defaults(rules)
	}
	for _, r := range rules {
		if _, ok := th[r.ID]; !ok {
			return nil, fmt.Errorf("monitor: %s missing threshold for rule %d", name, r.ID)
		}
		if r.Hazard == trace.HazardNone {
			// Mirror the streaming constructor: a hazard-less rule would
			// silently never alarm here while the streaming path reports
			// it, voiding the differential-oracle equivalence.
			return nil, fmt.Errorf("monitor: %s rule %d has no hazard class", name, r.ID)
		}
	}
	return &ContextAwareLegacy{
		name:       name,
		rules:      rules,
		thresholds: th,
		params:     p.WithDefaults(),
	}, nil
}

// Name implements Monitor.
func (m *ContextAwareLegacy) Name() string { return m.name }

// Reset implements Monitor.
func (m *ContextAwareLegacy) Reset() { m.lastFired = m.lastFired[:0] }

// Step implements Monitor: evaluate every rule on the current context;
// the predicted hazard is the type of the violated rule (H1 wins ties,
// being the acute hazard).
func (m *ContextAwareLegacy) Step(obs Observation) Verdict {
	st := scs.State{
		BG:       obs.CGM,
		BGPrime:  obs.BGPrime,
		IOB:      obs.IOB,
		IOBPrime: obs.IOBPrime,
		Action:   obs.Action,
	}
	m.lastFired = m.lastFired[:0]
	var hazard trace.HazardType
	for _, r := range m.rules {
		if r.Violated(st, m.params, m.thresholds[r.ID]) {
			m.lastFired = append(m.lastFired, r.ID)
			if hazard == trace.HazardNone || r.Hazard == trace.HazardH1 {
				hazard = r.Hazard
			}
		}
	}
	if hazard == trace.HazardNone {
		return Verdict{}
	}
	sort.Ints(m.lastFired)
	return Verdict{Alarm: true, Hazard: hazard}
}

// FiredRules returns the rule IDs that fired at the last step.
func (m *ContextAwareLegacy) FiredRules() []int {
	out := make([]int, len(m.lastFired))
	copy(out, m.lastFired)
	return out
}

// Thresholds returns the monitor's threshold table.
func (m *ContextAwareLegacy) Thresholds() scs.Thresholds { return m.thresholds }
