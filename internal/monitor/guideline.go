package monitor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// GuidelineConfig parameterizes the medical-guidelines baseline of
// Table III (the data-authenticity monitor of Young et al.): BG must
// stay in [70, 180] mg/dL, must not change faster than (−5, +3) mg/dL
// per cycle, and excursions beyond the patient's 10th/90th percentile
// must recover within α minutes.
type GuidelineConfig struct {
	BGLow     float64 // default 70
	BGHigh    float64 // default 180
	DeltaLow  float64 // default -5 (mg/dL per cycle)
	DeltaHigh float64 // default +3
	AlphaMin  float64 // recovery deadline, default 25 minutes
	// Lambda10/Lambda90 are the patient-specific BG percentiles of rules
	// φ3/φ4; derive them with PercentilesFromTraces.
	Lambda10 float64
	Lambda90 float64
}

func (c GuidelineConfig) withDefaults() GuidelineConfig {
	if c.BGLow == 0 {
		c.BGLow = 70
	}
	if c.BGHigh == 0 {
		c.BGHigh = 180
	}
	if c.DeltaLow == 0 {
		c.DeltaLow = -5
	}
	if c.DeltaHigh == 0 {
		c.DeltaHigh = 3
	}
	if c.AlphaMin == 0 {
		c.AlphaMin = 25
	}
	if c.Lambda10 == 0 {
		c.Lambda10 = 80
	}
	if c.Lambda90 == 0 {
		c.Lambda90 = 170
	}
	return c
}

// Guideline is the Table III medical-guidelines monitor.
type Guideline struct {
	cfg GuidelineConfig

	prevCGM    float64
	havePrev   bool
	belowSince float64 // time BG fell below λ10; NaN when not below
	aboveSince float64
}

var _ Monitor = (*Guideline)(nil)

// NewGuideline builds the monitor.
func NewGuideline(cfg GuidelineConfig) (*Guideline, error) {
	cfg = cfg.withDefaults()
	if cfg.BGLow >= cfg.BGHigh {
		return nil, fmt.Errorf("monitor: guideline BG range [%v,%v] empty", cfg.BGLow, cfg.BGHigh)
	}
	if cfg.Lambda10 >= cfg.Lambda90 {
		return nil, fmt.Errorf("monitor: guideline percentiles λ10=%v ≥ λ90=%v", cfg.Lambda10, cfg.Lambda90)
	}
	g := &Guideline{cfg: cfg}
	g.Reset()
	return g, nil
}

// Name implements Monitor.
func (g *Guideline) Name() string { return "Guideline" }

// Reset implements Monitor.
func (g *Guideline) Reset() {
	g.prevCGM = 0
	g.havePrev = false
	g.belowSince = math.NaN()
	g.aboveSince = math.NaN()
}

// Step implements Monitor. Timer bookkeeping for the φ3/φ4 recovery
// deadlines happens before any rule fires, so an alarm from one rule
// never desynchronizes another rule's state.
func (g *Guideline) Step(obs Observation) Verdict {
	hadPrev, prev := g.havePrev, g.prevCGM
	g.prevCGM = obs.CGM
	g.havePrev = true

	if obs.CGM < g.cfg.Lambda10 {
		if math.IsNaN(g.belowSince) {
			g.belowSince = obs.TimeMin
		}
	} else {
		g.belowSince = math.NaN()
	}
	if obs.CGM > g.cfg.Lambda90 {
		if math.IsNaN(g.aboveSince) {
			g.aboveSince = obs.TimeMin
		}
	} else {
		g.aboveSince = math.NaN()
	}

	// φ1: hard range.
	if obs.CGM < g.cfg.BGLow {
		return Verdict{Alarm: true, Hazard: trace.HazardH1}
	}
	if obs.CGM > g.cfg.BGHigh {
		return Verdict{Alarm: true, Hazard: trace.HazardH2}
	}
	// φ2: rate of change per cycle.
	if hadPrev {
		delta := obs.CGM - prev
		if delta < g.cfg.DeltaLow {
			return Verdict{Alarm: true, Hazard: trace.HazardH1}
		}
		if delta > g.cfg.DeltaHigh {
			return Verdict{Alarm: true, Hazard: trace.HazardH2}
		}
	}
	// φ3: recovery deadline below λ10.
	if !math.IsNaN(g.belowSince) && obs.TimeMin-g.belowSince >= g.cfg.AlphaMin {
		return Verdict{Alarm: true, Hazard: trace.HazardH1}
	}
	// φ4: recovery deadline above λ90.
	if !math.IsNaN(g.aboveSince) && obs.TimeMin-g.aboveSince >= g.cfg.AlphaMin {
		return Verdict{Alarm: true, Hazard: trace.HazardH2}
	}
	return Verdict{}
}

// PercentilesFromTraces computes the 10th and 90th percentile of the
// sensed glucose across fault-free traces, the λ10/λ90 of Table III.
func PercentilesFromTraces(traces []*trace.Trace) (lambda10, lambda90 float64, err error) {
	var bgs []float64
	for _, tr := range traces {
		bgs = append(bgs, tr.CGMSeries()...)
	}
	if len(bgs) == 0 {
		return 0, 0, fmt.Errorf("monitor: no samples for percentile estimation")
	}
	sort.Float64s(bgs)
	return percentile(bgs, 0.10), percentile(bgs, 0.90), nil
}

// percentile returns the p-quantile of sorted data (linear interpolation).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
