package monitor

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/trace"
)

// Features extracts the ML feature vector of Eq. 7 from an observation:
// the observable state xt plus the issued control action ut.
func Features(obs Observation) []float64 {
	return []float64{
		obs.CGM,
		obs.BGPrime,
		obs.IOB,
		obs.IOBPrime,
		obs.Rate,
		float64(obs.Action),
	}
}

// FeatureDim is the length of the Features vector.
const FeatureDim = 6

// FeaturesFromSample extracts the same features from a recorded sample
// (for training-set construction).
func FeaturesFromSample(s *trace.Sample) []float64 {
	return []float64{
		s.CGM,
		s.BGPrime,
		s.IOB,
		s.IOBPrime,
		s.Rate,
		float64(s.Action),
	}
}

// classToHazard maps a classifier output to a hazard verdict. Binary
// classifiers emit class 1 = unsafe (hazard type unknown: report H2's
// conservative counterpart by glucose side is unavailable, so Unknown
// maps to H1, the acute hazard). Multi-class classifiers emit
// 0=safe, 1=H1, 2=H2.
func classToHazard(class, classes int) Verdict {
	switch {
	case class == 0:
		return Verdict{}
	case classes == 2:
		return Verdict{Alarm: true, Hazard: trace.HazardH1}
	case class == 1:
		return Verdict{Alarm: true, Hazard: trace.HazardH1}
	default:
		return Verdict{Alarm: true, Hazard: trace.HazardH2}
	}
}

// probaToVerdict derives the verdict from one class-probability pass:
// the argmax class decides alarm and hazard exactly as Predict would,
// and its probability becomes the verdict's Confidence.
func probaToVerdict(proba []float64, classes int) Verdict {
	class, best := 0, proba[0]
	for i, p := range proba {
		if p > best {
			class, best = i, p
		}
	}
	v := classToHazard(class, classes)
	v.Confidence = best
	return v
}

// MLMonitor wraps a point-in-time classifier (DT, MLP) as a safety
// monitor per Eq. 7.
type MLMonitor struct {
	name string
	clf  ml.Classifier
}

var _ Monitor = (*MLMonitor)(nil)

// NewMLMonitor wraps a trained classifier.
func NewMLMonitor(name string, clf ml.Classifier) (*MLMonitor, error) {
	if clf == nil {
		return nil, fmt.Errorf("monitor: nil classifier")
	}
	return &MLMonitor{name: name, clf: clf}, nil
}

// Name implements Monitor.
func (m *MLMonitor) Name() string { return m.name }

// Reset implements Monitor.
func (m *MLMonitor) Reset() {}

// Step implements Monitor. The verdict carries the predicted class's
// probability as Confidence, from the same single forward pass that
// decides the alarm.
func (m *MLMonitor) Step(obs Observation) Verdict {
	return probaToVerdict(m.clf.PredictProba(Features(obs)), m.clf.Classes())
}

// SequenceMonitor wraps a windowed classifier (LSTM) as a safety monitor
// per Eq. 8: it maintains a sliding window of the last k observations
// and stays silent until the window fills.
type SequenceMonitor struct {
	name   string
	clf    ml.SequenceClassifier
	window int
	buf    [][]float64
}

var _ Monitor = (*SequenceMonitor)(nil)

// NewSequenceMonitor wraps a trained sequence classifier with window k.
func NewSequenceMonitor(name string, clf ml.SequenceClassifier, window int) (*SequenceMonitor, error) {
	if clf == nil {
		return nil, fmt.Errorf("monitor: nil sequence classifier")
	}
	if window <= 0 {
		return nil, fmt.Errorf("monitor: invalid window %d", window)
	}
	return &SequenceMonitor{name: name, clf: clf, window: window}, nil
}

// Name implements Monitor.
func (m *SequenceMonitor) Name() string { return m.name }

// Reset implements Monitor.
func (m *SequenceMonitor) Reset() { m.buf = m.buf[:0] }

// Step implements Monitor.
func (m *SequenceMonitor) Step(obs Observation) Verdict {
	m.buf = append(m.buf, Features(obs))
	if len(m.buf) > m.window {
		m.buf = m.buf[1:]
	}
	if len(m.buf) < m.window {
		return Verdict{}
	}
	return probaToVerdict(m.clf.PredictProba(m.buf), m.clf.Classes())
}

// TrainingData assembles point-in-time training matrices from labeled
// traces per Eq. 7: a sample is positive when a hazard occurs at any
// future time of its trace. With multiClass, positives carry the hazard
// type (1=H1, 2=H2).
func TrainingData(traces []*trace.Trace, multiClass bool) (X [][]float64, y []int) {
	for _, tr := range traces {
		hazType := tr.DominantHazard()
		for i := range tr.Samples {
			s := &tr.Samples[i]
			label := 0
			// Positive when a hazard happens at any t' >= t (Eq. 7).
			if anyHazardAtOrAfter(tr, s.Step) {
				if multiClass {
					label = int(hazType)
				} else {
					label = 1
				}
			}
			X = append(X, FeaturesFromSample(s))
			y = append(y, label)
		}
	}
	return X, y
}

// SequenceTrainingData assembles windowed training data per Eq. 8.
func SequenceTrainingData(traces []*trace.Trace, window int, multiClass bool) (X [][][]float64, y []int) {
	for _, tr := range traces {
		hazType := tr.DominantHazard()
		for end := window; end <= tr.Len(); end++ {
			win := make([][]float64, window)
			for k := 0; k < window; k++ {
				win[k] = FeaturesFromSample(&tr.Samples[end-window+k])
			}
			label := 0
			if anyHazardAtOrAfter(tr, tr.Samples[end-1].Step) {
				if multiClass {
					label = int(hazType)
				} else {
					label = 1
				}
			}
			X = append(X, win)
			y = append(y, label)
		}
	}
	return X, y
}

func anyHazardAtOrAfter(tr *trace.Trace, step int) bool {
	for i := step; i < tr.Len(); i++ {
		if tr.Samples[i].Hazard != trace.HazardNone {
			return true
		}
	}
	return false
}
