package monitor

import (
	"testing"

	"repro/internal/closedloop"
	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/sim/glucosym"
	"repro/internal/trace"
)

// probeMonitor records every observation it sees and alarms on a
// predicate over the exact fields Replay historically diverged on:
// the step-0 PrevRate seed and the scheduled basal.
type probeMonitor struct {
	obs []Observation
}

func (p *probeMonitor) Name() string { return "probe" }
func (p *probeMonitor) Reset()       { p.obs = p.obs[:0] }
func (p *probeMonitor) Step(o Observation) Verdict {
	p.obs = append(p.obs, o)
	if o.Basal <= 0 {
		// A live loop always reports a positive scheduled basal; replay
		// must too.
		return Verdict{Alarm: true, Hazard: trace.HazardH2}
	}
	if o.PrevRate > o.Basal+1e-9 {
		return Verdict{Alarm: true, Hazard: trace.HazardH1}
	}
	return Verdict{}
}

// runLive executes a closed-loop run with the probe attached and
// returns the probe, its trace, and the live verdicts (recorded on the
// trace samples by the loop itself).
func runLive(t *testing.T, f *fault.Fault) (*probeMonitor, *trace.Trace) {
	t.Helper()
	patient, err := glucosym.New(2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := control.NewOpenAPS(control.OpenAPSConfig{Basal: patient.Basal(), ISF: 45})
	if err != nil {
		t.Fatal(err)
	}
	probe := &probeMonitor{}
	tr, err := closedloop.Run(closedloop.Config{
		Platform: "glucosym/" + ctrl.Name(), Steps: 60, InitialBG: 160,
		Patient: patient, Controller: ctrl, Fault: f, Monitor: probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	return probe, tr
}

// checkReplayMatchesLive replays a fresh probe over the recorded trace
// and demands verdict-for-verdict and observation-for-observation
// equality with the live run.
func checkReplayMatchesLive(t *testing.T, live *probeMonitor, tr *trace.Trace) {
	t.Helper()
	if tr.Basal <= 0 {
		t.Fatalf("trace did not persist the scheduled basal (got %v)", tr.Basal)
	}
	replayProbe := &probeMonitor{}
	verdicts := Replay(replayProbe, tr)
	if len(verdicts) != tr.Len() {
		t.Fatalf("%d verdicts for %d samples", len(verdicts), tr.Len())
	}
	for i := range tr.Samples {
		s := &tr.Samples[i]
		if verdicts[i].Alarm != s.Alarm || verdicts[i].Hazard != s.AlarmHazard {
			t.Errorf("step %d: replay verdict %+v, live alarm=%v hazard=%v",
				i, verdicts[i], s.Alarm, s.AlarmHazard)
		}
	}
	if len(replayProbe.obs) != len(live.obs) {
		t.Fatalf("replay saw %d observations, live saw %d", len(replayProbe.obs), len(live.obs))
	}
	for i := range live.obs {
		if replayProbe.obs[i] != live.obs[i] {
			t.Errorf("step %d: replay observation differs from live:\n got %+v\nwant %+v",
				i, replayProbe.obs[i], live.obs[i])
		}
	}
}

// TestReplayMatchesLiveLoop: replaying a recorded trace must feed a
// monitor exactly the observations the closed loop fed it online and
// therefore reproduce the live verdicts.
func TestReplayMatchesLiveLoop(t *testing.T) {
	f := &fault.Fault{Kind: fault.KindMax, Target: "glucose", StartStep: 10, Duration: 20, Value: 400}
	live, tr := runLive(t, f)
	checkReplayMatchesLive(t, live, tr)
}

// TestReplayMatchesLiveLoopStepZeroFault is the historical divergence:
// with a fault active at step 0 the first commanded rate is perturbed,
// and Replay used to seed the step-0 PrevRate from that perturbed rate
// while the live Stepper seeds it from the patient's scheduled basal.
func TestReplayMatchesLiveLoopStepZeroFault(t *testing.T) {
	f := &fault.Fault{Kind: fault.KindMax, Target: "glucose", StartStep: 0, Duration: 30, Value: 400}
	live, tr := runLive(t, f)

	// The scenario must actually exercise the bug: the perturbed step-0
	// command has to differ from the scheduled basal.
	if tr.Samples[0].Rate == tr.Basal {
		t.Fatal("step-0 command equals basal; scenario does not cover the PrevRate seed")
	}
	checkReplayMatchesLive(t, live, tr)

	// And the old seeding must actually have produced different
	// verdicts on this scenario, so the regression test is not vacuous.
	buggy := &probeMonitor{}
	buggy.Reset()
	prevRate := 0.0
	diverged := false
	for i := range tr.Samples {
		s := &tr.Samples[i]
		if i == 0 {
			prevRate = s.Rate
		}
		v := buggy.Step(Observation{
			Step: s.Step, TimeMin: s.TimeMin, CycleMin: tr.CycleMin,
			CGM: s.CGM, BGPrime: s.BGPrime, IOB: s.IOB, IOBPrime: s.IOBPrime,
			Rate: s.Rate, PrevRate: prevRate, Action: s.Action,
		})
		if v.Alarm != s.Alarm || v.Hazard != s.AlarmHazard {
			diverged = true
		}
		prevRate = s.Delivered
	}
	if !diverged {
		t.Error("legacy Replay seeding agrees with live on a step-0 fault — regression scenario is vacuous")
	}
}

// TestReplayBackwardCompatZeroBasal: a trace recorded before the basal
// was persisted replays with Basal == 0 and must not panic (monitors
// that depend on basal will see the documented zero).
func TestReplayBackwardCompatZeroBasal(t *testing.T) {
	_, tr := runLive(t, nil)
	tr.Basal = 0 // simulate a pre-Basal recording
	probe := &probeMonitor{}
	verdicts := Replay(probe, tr)
	if len(verdicts) != tr.Len() {
		t.Fatalf("%d verdicts for %d samples", len(verdicts), tr.Len())
	}
	for i, v := range verdicts {
		if !v.Alarm {
			t.Fatalf("step %d: probe did not observe the zero basal", i)
		}
	}
}
