package monitor_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/closedloop"
	"repro/internal/control"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/sensor"
	"repro/internal/sim/glucosym"
	"repro/internal/trace"
)

// diffTraces generates fleet traces covering every fault kind of the
// campaign matrix, optionally with per-session CGM sensor noise.
func diffTraces(t *testing.T, noise float64, seed int64) []*trace.Trace {
	t.Helper()
	all := fault.Campaign(nil)
	// Every 11th scenario: spans all six fault kinds and both targets.
	var scenarios []fault.Scenario
	for i := 0; i < len(all); i += 11 {
		scenarios = append(scenarios, all[i])
	}
	cfg := fleet.Config{
		Platform: fleet.Platform{
			Name:        "glucosym",
			NumPatients: glucosym.NumPatients,
			NewPatient: func(idx int) (closedloop.Patient, error) {
				return glucosym.New(idx)
			},
			NewController: func(basal float64) (control.Controller, error) {
				return control.NewOpenAPS(control.OpenAPSConfig{Basal: basal, ISF: 50})
			},
		},
		Patients:  []int{0, 2, 4},
		Scenarios: fault.Programs(scenarios),
		Steps:     60,
		Seed:      seed,
	}
	if noise > 0 {
		cfg.Sensor = &sensor.Config{NoiseSD: noise}
	}
	res, err := fleet.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Traces
}

// randomThresholds draws a β table uniformly inside each rule's
// learnable bounds.
func randomThresholds(rules []scs.Rule, rng *rand.Rand) scs.Thresholds {
	th := make(scs.Thresholds, len(rules))
	for _, r := range rules {
		th[r.ID] = r.Lo + (r.Hi-r.Lo)*rng.Float64()
	}
	return th
}

// TestStreamingCAWTMatchesLegacyDifferential is the redesign's core
// differential guarantee: over fleet-generated traces spanning every
// fault scenario kind, with and without sensor noise, and under
// randomized learned thresholds, the streaming ContextAware monitor
// must produce bit-identical alarm and hazard sequences (and fired-rule
// sets) to the legacy eager evaluator — while additionally carrying a
// margin and rule attribution the legacy path cannot produce.
func TestStreamingCAWTMatchesLegacyDifferential(t *testing.T) {
	rules := scs.TableI()
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct {
		name  string
		noise float64
	}{
		{"clean", 0},
		{"sensor-noise", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			traces := diffTraces(t, tc.noise, 11)
			// Default (CAWOT) thresholds plus randomized CAWT tables.
			tables := []scs.Thresholds{scs.Defaults(rules)}
			for k := 0; k < 3; k++ {
				tables = append(tables, randomThresholds(rules, rng))
			}
			var alarms, margins int
			for ti, th := range tables {
				streaming, err := monitor.NewCAWT(rules, th, scs.Params{})
				if err != nil {
					t.Fatal(err)
				}
				legacy, err := monitor.NewContextAwareLegacy("CAWT", rules, th, scs.Params{})
				if err != nil {
					t.Fatal(err)
				}
				for _, tr := range traces {
					got := monitor.Replay(streaming, tr)
					want := monitor.Replay(legacy, tr)
					for i := range want {
						if got[i].Alarm != want[i].Alarm || got[i].Hazard != want[i].Hazard {
							t.Fatalf("thresholds %d, %s step %d: streaming (alarm=%v hazard=%v) vs legacy (alarm=%v hazard=%v)",
								ti, tr.Fault.Name, i, got[i].Alarm, got[i].Hazard, want[i].Alarm, want[i].Hazard)
						}
						if got[i].Alarm {
							alarms++
							if got[i].Margin > 0 || got[i].Rule == 0 {
								t.Fatalf("thresholds %d, %s step %d: alarm verdict lacks margin/rule: %+v",
									ti, tr.Fault.Name, i, got[i])
							}
						} else if got[i].Margin < 0 {
							t.Fatalf("thresholds %d, %s step %d: silent verdict with negative margin %v",
								ti, tr.Fault.Name, i, got[i].Margin)
						}
						if got[i].Rule != 0 {
							margins++
						}
						if got[i].Confidence < 0 || got[i].Confidence > 1 || math.IsNaN(got[i].Confidence) {
							t.Fatalf("confidence %v out of range", got[i].Confidence)
						}
					}
				}
			}
			if alarms == 0 {
				t.Fatal("no alarms across a full fault campaign — differential comparison is vacuous")
			}
			if margins == 0 {
				t.Fatal("streaming verdicts never carried rule attribution")
			}
		})
	}
}

// TestStreamingCAWTFiredRulesMatchLegacy drives both evaluators over
// randomized raw observations (beyond what closed-loop dynamics reach)
// and requires identical fired-rule diagnostics.
func TestStreamingCAWTFiredRulesMatchLegacy(t *testing.T) {
	rules := scs.TableI()
	rng := rand.New(rand.NewSource(23))
	th := randomThresholds(rules, rng)
	streaming, err := monitor.NewCAWT(rules, th, scs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := monitor.NewContextAwareLegacy("CAWT", rules, th, scs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		obs := monitor.Observation{
			Step: i, TimeMin: float64(i) * 5, CycleMin: 5,
			CGM:     40 + 360*rng.Float64(),
			BGPrime: -8 + 16*rng.Float64(),
			IOB:     -4 + 14*rng.Float64(),
			// Concentrate derivatives near the eps boundaries to stress
			// trend-band edges.
			IOBPrime: (-1 + 2*rng.Float64()) * 0.006,
			Action:   trace.Action(1 + rng.Intn(4)),
		}
		gv, wv := streaming.Step(obs), legacy.Step(obs)
		if gv.Alarm != wv.Alarm || gv.Hazard != wv.Hazard {
			t.Fatalf("step %d: streaming %+v vs legacy %+v (obs %+v)", i, gv, wv, obs)
		}
		gf, wf := streaming.FiredRules(), legacy.FiredRules()
		if len(gf) != len(wf) {
			t.Fatalf("step %d: fired %v vs legacy %v", i, gf, wf)
		}
		for k := range gf {
			if gf[k] != wf[k] {
				t.Fatalf("step %d: fired %v vs legacy %v", i, gf, wf)
			}
		}
	}
}

// TestReplayWarnsOnZeroBasal: replaying a pre-basal trace through a
// basal-sensitive monitor must warn loudly (satellite of the re-record
// task: the warning is what catches stale fixtures).
func TestReplayWarnsOnZeroBasal(t *testing.T) {
	tr := &trace.Trace{CycleMin: 5, PatientID: "glucosym-0", Platform: "glucosym/openaps"}
	for i := 0; i < 10; i++ {
		tr.Samples = append(tr.Samples, trace.Sample{Step: i, CGM: 120, Rate: 1.3})
	}
	mpc, err := monitor.NewMPC(monitor.MPCConfig{Basal: 1.3})
	if err != nil {
		t.Fatal(err)
	}

	warned := monitor.CaptureReplayWarnings(t)
	monitor.Replay(mpc, tr) // Basal == 0: must warn
	if len(*warned) == 0 {
		t.Fatal("no warning for a basal-sensitive monitor on a Basal==0 trace")
	}

	*warned = (*warned)[:0]
	tr.Basal = 1.3
	monitor.Replay(mpc, tr)
	if len(*warned) != 0 {
		t.Fatalf("unexpected warning on a basal-carrying trace: %v", *warned)
	}

	// Monitors without basal sensitivity replay quietly either way.
	tr.Basal = 0
	cawot, err := monitor.NewCAWOT(scs.TableI(), scs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	monitor.Replay(cawot, tr)
	if len(*warned) != 0 {
		t.Fatalf("unexpected warning for a basal-insensitive monitor: %v", *warned)
	}
}
