package monitor

import (
	"fmt"
	"sort"

	"repro/internal/scs"
	"repro/internal/trace"
)

// ContextAware is the rule-based safety monitor of Section III: it
// evaluates the Table I Safety Context Specification online each control
// cycle and alarms when the issued action is unsafe in the current
// context. With data-driven thresholds it is the paper's CAWT monitor;
// with the generic defaults it is the CAWOT baseline.
type ContextAware struct {
	name       string
	rules      []scs.Rule
	thresholds scs.Thresholds
	params     scs.Params

	lastFired []int // rule IDs fired at the last step (diagnostics)
}

var _ Monitor = (*ContextAware)(nil)

// NewCAWT builds the context-aware monitor with learned thresholds.
func NewCAWT(rules []scs.Rule, th scs.Thresholds, p scs.Params) (*ContextAware, error) {
	return newContextAware("CAWT", rules, th, p)
}

// NewCAWOT builds the context-aware baseline with default thresholds.
func NewCAWOT(rules []scs.Rule, p scs.Params) (*ContextAware, error) {
	return newContextAware("CAWOT", rules, scs.Defaults(rules), p)
}

func newContextAware(name string, rules []scs.Rule, th scs.Thresholds, p scs.Params) (*ContextAware, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("monitor: %s needs at least one rule", name)
	}
	for _, r := range rules {
		if _, ok := th[r.ID]; !ok {
			return nil, fmt.Errorf("monitor: %s missing threshold for rule %d", name, r.ID)
		}
	}
	return &ContextAware{
		name:       name,
		rules:      rules,
		thresholds: th,
		params:     p.WithDefaults(),
	}, nil
}

// Name implements Monitor.
func (m *ContextAware) Name() string { return m.name }

// Reset implements Monitor.
func (m *ContextAware) Reset() { m.lastFired = m.lastFired[:0] }

// Step implements Monitor: evaluate every rule on the current context;
// the predicted hazard is the type of the violated rule (H1 wins ties,
// being the acute hazard).
func (m *ContextAware) Step(obs Observation) Verdict {
	st := scs.State{
		BG:       obs.CGM,
		BGPrime:  obs.BGPrime,
		IOB:      obs.IOB,
		IOBPrime: obs.IOBPrime,
		Action:   obs.Action,
	}
	m.lastFired = m.lastFired[:0]
	var hazard trace.HazardType
	for _, r := range m.rules {
		if r.Violated(st, m.params, m.thresholds[r.ID]) {
			m.lastFired = append(m.lastFired, r.ID)
			if hazard == trace.HazardNone || r.Hazard == trace.HazardH1 {
				hazard = r.Hazard
			}
		}
	}
	if hazard == trace.HazardNone {
		return Verdict{}
	}
	sort.Ints(m.lastFired)
	return Verdict{Alarm: true, Hazard: hazard}
}

// FiredRules returns the rule IDs that fired at the last step.
func (m *ContextAware) FiredRules() []int {
	out := make([]int, len(m.lastFired))
	copy(out, m.lastFired)
	return out
}

// Thresholds returns the monitor's threshold table.
func (m *ContextAware) Thresholds() scs.Thresholds { return m.thresholds }
