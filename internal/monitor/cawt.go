package monitor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/scs"
)

// DefaultCycleMin is the control-cycle length the rule streams compile
// against before the first observation arrives. Table I bodies are pure
// state predicates, so the sampling period only matters for rule sets
// with temporal windows; those recompile on the first observed cycle
// length if it differs.
const DefaultCycleMin = 5

// ContextAware is the rule-based safety monitor of Section III: it
// evaluates the Table I Safety Context Specification online each control
// cycle and alarms when the issued action is unsafe in the current
// context. With data-driven thresholds it is the paper's CAWT monitor;
// with the generic defaults it is the CAWOT baseline.
//
// The rules evaluate through one incremental scs.StreamSet — a
// hash-consed streaming STL group in which shared subformulas evaluate
// once per cycle — and the alarm, the signed robustness margin, and the
// arg-min rule attribution of every verdict all come from that single
// evaluation (no second per-cycle pass; the one-evaluation invariant the
// differential tests pin against ContextAwareLegacy).
type ContextAware struct {
	name       string
	rules      []scs.Rule
	thresholds scs.Thresholds
	params     scs.Params

	dt      float64
	streams *scs.StreamSet
	last    scs.StreamVerdict
	lastOK  bool

	lastFired []int // rule IDs fired at the last step (diagnostics)
}

var _ Monitor = (*ContextAware)(nil)

// NewCAWT builds the context-aware monitor with learned thresholds.
func NewCAWT(rules []scs.Rule, th scs.Thresholds, p scs.Params) (*ContextAware, error) {
	return newContextAware("CAWT", rules, th, p)
}

// NewCAWOT builds the context-aware baseline with default thresholds.
func NewCAWOT(rules []scs.Rule, p scs.Params) (*ContextAware, error) {
	return newContextAware("CAWOT", rules, scs.Defaults(rules), p)
}

func newContextAware(name string, rules []scs.Rule, th scs.Thresholds, p scs.Params) (*ContextAware, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("monitor: %s needs at least one rule", name)
	}
	for _, r := range rules {
		if _, ok := th[r.ID]; !ok {
			return nil, fmt.Errorf("monitor: %s missing threshold for rule %d", name, r.ID)
		}
	}
	p = p.WithDefaults()
	streams, err := scs.NewStreamSet(rules, th, p, DefaultCycleMin)
	if err != nil {
		return nil, fmt.Errorf("monitor: %s: %w", name, err)
	}
	return &ContextAware{
		name:       name,
		rules:      rules,
		thresholds: th,
		params:     p,
		dt:         DefaultCycleMin,
		streams:    streams,
	}, nil
}

// Name implements Monitor.
func (m *ContextAware) Name() string { return m.name }

// Reset implements Monitor.
func (m *ContextAware) Reset() {
	m.streams.Reset()
	m.last = scs.StreamVerdict{}
	m.lastOK = false
	m.lastFired = m.lastFired[:0]
}

// Step implements Monitor: push the cycle's context state through the
// streaming rule set and read alarm, hazard, margin, and rule
// attribution from the one incremental evaluation. The predicted hazard
// is the class of the violated rules (H1 wins ties, being the acute
// hazard).
func (m *ContextAware) Step(obs Observation) Verdict {
	if obs.CycleMin > 0 && obs.CycleMin != m.dt && m.streams.Len() == 0 {
		// Recompile at the observed sampling period before any state
		// accumulates. Table I bodies are sampling-period-free; this only
		// matters for rule sets with temporal windows.
		streams, err := scs.NewStreamSet(m.rules, m.thresholds, m.params, obs.CycleMin)
		if err != nil {
			// The rule set compiled at DefaultCycleMin; a positive cycle
			// length cannot change compilability.
			panic(fmt.Sprintf("monitor: %s recompile at dt=%v: %v", m.name, obs.CycleMin, err))
		}
		m.streams, m.dt = streams, obs.CycleMin
	}
	v, err := m.streams.Push(scs.State{
		BG:       obs.CGM,
		BGPrime:  obs.BGPrime,
		IOB:      obs.IOB,
		IOBPrime: obs.IOBPrime,
		Action:   obs.Action,
	})
	if err != nil {
		// The push vocabulary is fixed at construction; an error here is
		// an engine bug, not an input condition.
		panic(fmt.Sprintf("monitor: %s: %v", m.name, err))
	}
	m.last, m.lastOK = v, true
	m.lastFired = append(m.lastFired[:0], m.streams.Fired()...)
	if len(m.lastFired) > 1 {
		sort.Ints(m.lastFired)
	}
	return Verdict{
		Alarm:      !v.Sat,
		Hazard:     v.Hazard,
		Margin:     v.Margin,
		Rule:       v.Rule,
		Confidence: marginConfidence(v.Margin),
	}
}

// marginConfidence squashes a signed robustness margin into [0, 1):
// verdicts at the rule boundary carry no confidence, deep margins
// saturate toward 1.
func marginConfidence(margin float64) float64 {
	m := math.Abs(margin)
	if math.IsInf(m, 1) {
		return 1
	}
	return m / (1 + m)
}

// StreamVerdict returns the full streaming verdict of the last step —
// the same single evaluation the Verdict was derived from — for
// telemetry consumers that want the raw STL minimum alongside the
// signed margin. The boolean is false before the first step.
func (m *ContextAware) StreamVerdict() (scs.StreamVerdict, bool) {
	return m.last, m.lastOK
}

// FiredRules returns the rule IDs that fired at the last step.
func (m *ContextAware) FiredRules() []int {
	out := make([]int, len(m.lastFired))
	copy(out, m.lastFired)
	return out
}

// Thresholds returns the monitor's threshold table.
func (m *ContextAware) Thresholds() scs.Thresholds { return m.thresholds }
