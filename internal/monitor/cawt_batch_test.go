package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/scs"
	"repro/internal/trace"
)

// randCAWTObs draws an observation stream covering safe and violating
// contexts, hugging the decision boundaries often enough that ties and
// near-zero margins are exercised.
func randCAWTObs(rng *rand.Rand, step int) Observation {
	o := Observation{
		Step: step, TimeMin: float64(step) * 5, CycleMin: 5,
		CGM:     40 + 300*rng.Float64(),
		BGPrime: -6 + 12*rng.Float64(),
		IOB:     -2 + 10*rng.Float64(), IOBPrime: -0.05 + 0.1*rng.Float64(),
		Action: trace.Action(1 + rng.Intn(4)),
	}
	if rng.Intn(4) == 0 {
		o.CGM = scs.DefaultBGT + rng.NormFloat64()
	}
	return o
}

// TestBatchCAWTMatchesPerSession: the shard-batched context-aware
// monitor must produce verdicts, streaming verdicts, and fired-rule
// diagnostics exactly equal to one per-session ContextAware per lane,
// across randomized observation streams, active-lane subsets, staggered
// lane resets, and both threshold modes (CAWT learned / CAWOT default).
func TestBatchCAWTMatchesPerSession(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	rules := scs.TableI()
	learned := scs.Defaults(rules)
	for id, beta := range learned {
		learned[id] = beta + rng.NormFloat64()
	}

	for trial := 0; trial < 20; trial++ {
		width := 1 + rng.Intn(6)
		var batch *BatchContextAware
		newRef := func() (Monitor, error) { return NewCAWOT(rules, scs.Params{}) }
		var err error
		if trial%2 == 0 {
			batch, err = NewBatchCAWOT(rules, scs.Params{})
		} else {
			batch, err = NewBatchCAWT(rules, learned, scs.Params{})
			newRef = func() (Monitor, error) { return NewCAWT(rules, learned, scs.Params{}) }
		}
		if err != nil {
			t.Fatal(err)
		}
		batch.ResetLanes(width)
		refs := make([]*ContextAware, width)
		for lane := range refs {
			m, err := newRef()
			if err != nil {
				t.Fatal(err)
			}
			refs[lane] = m.(*ContextAware)
		}

		lanes := make([]int, 0, width)
		obs := make([]Observation, 0, width)
		out := make([]Verdict, width)
		laneStep := make([]int, width)
		alarms := 0
		for step := 0; step < 80; step++ {
			if rng.Intn(12) == 0 {
				lane := rng.Intn(width)
				batch.ResetLane(lane)
				refs[lane].Reset()
				laneStep[lane] = 0
			}
			lanes, obs = lanes[:0], obs[:0]
			for lane := 0; lane < width; lane++ {
				if rng.Intn(4) > 0 {
					lanes = append(lanes, lane)
					obs = append(obs, randCAWTObs(rng, laneStep[lane]))
					laneStep[lane]++
				}
			}
			if len(lanes) == 0 {
				continue
			}
			batch.StepBatch(lanes, obs, out)
			for k, lane := range lanes {
				want := refs[lane].Step(obs[k])
				if out[k] != want {
					t.Fatalf("trial %d step %d lane %d: batched %+v, per-session %+v",
						trial, step, lane, out[k], want)
				}
				if want.Alarm {
					alarms++
				}
				gotSV, gotOK := batch.StreamVerdictLane(lane)
				wantSV, wantOK := refs[lane].StreamVerdict()
				if gotOK != wantOK || gotSV != wantSV {
					t.Fatalf("trial %d step %d lane %d: stream verdict (%+v, %v) vs (%+v, %v)",
						trial, step, lane, gotSV, gotOK, wantSV, wantOK)
				}
				gotFired, wantFired := batch.FiredRulesLane(lane), refs[lane].FiredRules()
				if len(gotFired) != len(wantFired) {
					t.Fatalf("trial %d step %d lane %d: fired %v vs %v", trial, step, lane, gotFired, wantFired)
				}
				for i := range gotFired {
					if gotFired[i] != wantFired[i] {
						t.Fatalf("trial %d step %d lane %d: fired %v vs %v", trial, step, lane, gotFired, wantFired)
					}
				}
			}
		}
		if alarms == 0 {
			t.Fatalf("trial %d: no alarms across randomized contexts — comparison is vacuous", trial)
		}
	}
}

// TestBatchCAWTRecompilesAtObservedCycle: like ContextAware, the
// batched monitor recompiles its rule streams when the first observed
// cycle length differs from the construction default.
func TestBatchCAWTRecompilesAtObservedCycle(t *testing.T) {
	rules := scs.TableI()
	batch, err := NewBatchCAWOT(rules, scs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	batch.ResetLanes(2)
	ref, err := NewCAWOT(rules, scs.Params{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	out := make([]Verdict, 2)
	for step := 0; step < 20; step++ {
		o := randCAWTObs(rng, step)
		o.CycleMin = 1 // non-default sampling period
		o2 := o
		o2.CGM += 10
		batch.StepBatch([]int{0, 1}, []Observation{o, o2}, out)
		if want := ref.Step(o); out[0] != want {
			t.Fatalf("step %d: batched %+v, per-session %+v at CycleMin=1", step, out[0], want)
		}
	}
	// Before any step, lanes report no streaming verdict.
	batch.ResetLanes(2)
	if _, ok := batch.StreamVerdictLane(0); ok {
		t.Fatal("fresh lane reports a streaming verdict")
	}
}
