package monitor

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/trace"
)

// randObs builds a plausible observation stream.
func randObs(rng *rand.Rand) Observation {
	return Observation{
		CGM:      60 + 250*rng.Float64(),
		BGPrime:  -3 + 6*rng.Float64(),
		IOB:      5 * rng.Float64(),
		IOBPrime: -0.2 + 0.4*rng.Float64(),
		Rate:     4 * rng.Float64(),
		Action:   trace.Action(1 + rng.Intn(4)),
	}
}

func trainSmallMLP(t *testing.T, rng *rand.Rand) *ml.MLP {
	t.Helper()
	X := make([][]float64, 400)
	y := make([]int, len(X))
	for i := range X {
		o := randObs(rng)
		X[i] = Features(o)
		if o.CGM < 90 {
			y[i] = 1
		} else if o.CGM > 250 {
			y[i] = 2
		}
	}
	m, err := ml.FitMLP(X, y, ml.MLPConfig{Hidden: []int{24, 12}, Classes: 3, Epochs: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBatchMLMatchesPerSessionMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mlp := trainSmallMLP(t, rng)

	per, err := NewMLMonitor("MLP", mlp)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewBatchML("MLP", mlp.NewBatch())
	if err != nil {
		t.Fatal(err)
	}

	const lanesN = 33
	batch.ResetLanes(lanesN)
	lanes := make([]int, lanesN)
	obs := make([]Observation, lanesN)
	out := make([]Verdict, lanesN)
	for step := 0; step < 20; step++ {
		for k := range lanes {
			lanes[k] = k
			obs[k] = randObs(rng)
		}
		batch.StepBatch(lanes, obs, out)
		for k := range lanes {
			if want := per.Step(obs[k]); out[k] != want {
				t.Fatalf("step %d lane %d: batch %+v, per-session %+v", step, k, out[k], want)
			}
		}
	}
}

func TestBatchSequenceMatchesPerSessionMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const window = 4
	X := make([][][]float64, 150)
	y := make([]int, len(X))
	for i := range X {
		w := make([][]float64, window)
		var lastCGM float64
		for tt := range w {
			o := randObs(rng)
			lastCGM = o.CGM
			w[tt] = Features(o)
		}
		X[i] = w
		if lastCGM < 90 {
			y[i] = 1
		}
	}
	lstm, err := ml.FitLSTM(X, y, ml.LSTMConfig{Units: []int{10}, Window: window, Epochs: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}

	const lanesN = 7
	perLane := make([]*SequenceMonitor, lanesN)
	for i := range perLane {
		perLane[i], err = NewSequenceMonitor("LSTM", lstm, window)
		if err != nil {
			t.Fatal(err)
		}
	}
	batch, err := NewBatchSequence("LSTM", lstm.NewBatch(), window)
	if err != nil {
		t.Fatal(err)
	}
	batch.ResetLanes(lanesN)

	// Lanes step at different cadences: lane k skips steps where
	// (step+k)%3 == 0, so windows fill at different times.
	var lanes []int
	var obs []Observation
	var out []Verdict
	for step := 0; step < 25; step++ {
		lanes, obs = lanes[:0], obs[:0]
		for k := 0; k < lanesN; k++ {
			if (step+k)%3 == 0 {
				continue
			}
			lanes = append(lanes, k)
			obs = append(obs, randObs(rng))
		}
		if cap(out) < len(obs) {
			out = make([]Verdict, len(obs))
		}
		out = out[:len(obs)]
		batch.StepBatch(lanes, obs, out)
		for i, k := range lanes {
			if want := perLane[k].Step(obs[i]); out[i] != want {
				t.Fatalf("step %d lane %d: batch %+v, per-session %+v", step, k, out[i], want)
			}
		}
	}

	// Resetting one lane restarts its window fill without touching others.
	batch.ResetLane(2)
	perLane[2].Reset()
	for step := 0; step < window+1; step++ {
		o := randObs(rng)
		lanes = append(lanes[:0], 2)
		obs = append(obs[:0], o)
		out = out[:1]
		batch.StepBatch(lanes, obs, out)
		if want := perLane[2].Step(o); out[0] != want {
			t.Fatalf("post-reset step %d: batch %+v, per-session %+v", step, out[0], want)
		}
	}
}
