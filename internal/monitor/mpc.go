package monitor

import (
	"fmt"

	"repro/internal/trace"
)

// MPCConfig parameterizes the model-predictive baseline monitor of
// Section IV-C2, built on the Bergman & Sherwin minimal model (Eq. 6):
//
//	dBG/dt = −(GEZI + IEFF)·BG + EGP + RA(t)
//
// The monitor integrates a population-parameter copy of this model
// forward over the prediction horizon, assuming the issued command is
// sustained, and alarms when the predicted BG leaves [70, 180] mg/dL.
type MPCConfig struct {
	GEZI float64 // glucose effectiveness at zero insulin, 1/min (default 0.0022)
	EGP  float64 // endogenous glucose production, mg/dL/min (default 1.33)
	SI   float64 // insulin sensitivity, mL/µU/min (default 6.5e-4)
	CI   float64 // insulin clearance, mL/min (default 2010)
	Tau1 float64 // SC insulin time constant, min (default 49)
	Tau2 float64 // plasma insulin time constant, min (default 47)
	P2   float64 // insulin action rate, 1/min (default 0.0106)

	HorizonMin float64 // prediction horizon, minutes (default 60)
	BGLow      float64 // default 70
	BGHigh     float64 // default 180
	Basal      float64 // scheduled basal for steady-state init, U/h (required)
}

func (c MPCConfig) withDefaults() (MPCConfig, error) {
	if c.Basal <= 0 {
		return c, fmt.Errorf("monitor: mpc needs positive basal")
	}
	if c.GEZI == 0 {
		c.GEZI = 0.0022
	}
	if c.EGP == 0 {
		c.EGP = 1.33
	}
	if c.SI == 0 {
		c.SI = 6.5e-4
	}
	if c.CI == 0 {
		c.CI = 2010
	}
	if c.Tau1 == 0 {
		c.Tau1 = 49
	}
	if c.Tau2 == 0 {
		c.Tau2 = 47
	}
	if c.P2 == 0 {
		c.P2 = 0.0106
	}
	if c.HorizonMin == 0 {
		c.HorizonMin = 60
	}
	if c.BGLow == 0 {
		c.BGLow = 70
	}
	if c.BGHigh == 0 {
		c.BGHigh = 180
	}
	return c, nil
}

// MPC is the model-predictive baseline monitor. It tracks its own copy
// of the insulin compartments (driven by the actually delivered rates)
// and forward-simulates the Bergman model each cycle.
type MPC struct {
	cfg MPCConfig

	isc, ip, ieff float64 // monitor-side insulin model state
	initialized   bool
}

var _ Monitor = (*MPC)(nil)

// NewMPC builds the monitor.
func NewMPC(cfg MPCConfig) (*MPC, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &MPC{cfg: cfg}
	m.Reset()
	return m, nil
}

// Name implements Monitor.
func (m *MPC) Name() string { return "MPC" }

// UsesBasal implements BasalSensitive: the monitor's insulin
// compartments initialize at the scheduled-basal steady state, so its
// projections assume the recorded loop ran at that basal — which a
// pre-basal (Basal == 0) trace cannot confirm.
func (m *MPC) UsesBasal() bool { return true }

// Reset implements Monitor.
func (m *MPC) Reset() {
	// Start the insulin compartments at the basal steady state.
	id := m.cfg.Basal * 1e6 / 60 // µU/min
	ipStar := id / m.cfg.CI
	m.isc = ipStar
	m.ip = ipStar
	m.ieff = m.cfg.SI * ipStar
	m.initialized = true
}

// advance integrates the monitor's insulin + glucose model by dtMin under
// a constant rate, starting from glucose bg; returns the ending glucose
// and updates the given insulin state in place.
func (m *MPC) advance(bg *float64, isc, ip, ieff *float64, rateUPerH, dtMin float64) {
	const h = 1.0 // 1-minute Euler steps are ample for this smooth model
	id := rateUPerH * 1e6 / 60
	steps := int(dtMin/h + 0.5)
	for k := 0; k < steps; k++ {
		dIsc := -*isc/m.cfg.Tau1 + id/(m.cfg.Tau1*m.cfg.CI)
		dIp := -(*ip - *isc) / m.cfg.Tau2
		dIeff := -m.cfg.P2**ieff + m.cfg.P2*m.cfg.SI**ip
		dBG := -(m.cfg.GEZI+*ieff)**bg + m.cfg.EGP
		*isc += h * dIsc
		*ip += h * dIp
		*ieff += h * dIeff
		*bg += h * dBG
		if *bg < 1 {
			*bg = 1
		}
	}
}

// Step implements Monitor: predict BG after executing the command for
// the horizon; alarm when the prediction exits the safe range.
func (m *MPC) Step(obs Observation) Verdict {
	// Predict from the current observation with a scratch copy of the
	// insulin state.
	bg := obs.CGM
	isc, ip, ieff := m.isc, m.ip, m.ieff
	m.advance(&bg, &isc, &ip, &ieff, obs.Rate, m.cfg.HorizonMin)

	// Commit the monitor's insulin state by one cycle at the issued rate
	// (the best estimate of what will be delivered).
	m.advance(new(float64), &m.isc, &m.ip, &m.ieff, obs.Rate, obs.CycleMin)

	switch {
	case bg < m.cfg.BGLow:
		return Verdict{Alarm: true, Hazard: trace.HazardH1}
	case bg > m.cfg.BGHigh:
		return Verdict{Alarm: true, Hazard: trace.HazardH2}
	default:
		return Verdict{}
	}
}
