package monitor

import (
	"log"

	"repro/internal/closedloop"
	"repro/internal/trace"
)

// Monitor re-exports the closed-loop monitor contract for implementers.
type Monitor = closedloop.Monitor

// Observation is the per-cycle monitor input.
type Observation = closedloop.Observation

// Verdict is the per-cycle monitor output.
type Verdict = closedloop.Verdict

// BasalSensitive is implemented by monitors whose verdicts depend on the
// loop's scheduled basal — Observation.Basal, or the step-0 PrevRate
// that Replay seeds from it. Replay warns loudly when such a monitor
// replays a trace recorded before the basal was persisted (Basal == 0):
// the observations it feeds then differ from what the live loop fed, and
// the replayed verdicts are not trustworthy.
type BasalSensitive interface {
	UsesBasal() bool
}

// replayWarnf is the warning hook for Replay diagnostics; tests override
// it to assert the warning fires.
var replayWarnf = log.Printf

// Replay drives a monitor over a recorded trace offline, returning the
// per-sample alarms. It mirrors exactly what the closed loop feeds the
// monitor online — including the step-0 PrevRate, which the live
// Stepper seeds from the patient's scheduled basal (not the first
// commanded rate), and Observation.Basal — so offline evaluation
// (Tables V and VI) agrees with online behavior. Traces recorded before
// the basal was persisted replay with Basal == 0; re-record them for
// basal-sensitive monitors (Replay warns when one replays such a trace).
func Replay(m Monitor, tr *trace.Trace) []Verdict {
	if tr.Basal == 0 {
		if bs, ok := m.(BasalSensitive); ok && bs.UsesBasal() {
			replayWarnf("monitor: WARNING: replaying a Basal==0 trace (patient %q, platform %q) "+
				"through basal-sensitive monitor %q — the trace predates basal persistence; "+
				"re-record it (trace.WriteCSV now stores the scheduled basal) or expect "+
				"verdicts to diverge from the live loop", tr.PatientID, tr.Platform, m.Name())
		}
	}
	m.Reset()
	out := make([]Verdict, tr.Len())
	prevRate := tr.Basal
	for i := range tr.Samples {
		s := &tr.Samples[i]
		out[i] = m.Step(Observation{
			Step: s.Step, TimeMin: s.TimeMin, CycleMin: tr.CycleMin,
			CGM: s.CGM, BGPrime: s.BGPrime, IOB: s.IOB, IOBPrime: s.IOBPrime,
			Rate: s.Rate, PrevRate: prevRate, Action: s.Action,
			Basal: tr.Basal,
		})
		prevRate = s.Delivered
	}
	return out
}

// Annotate writes a monitor's replayed verdicts into the trace samples.
func Annotate(m Monitor, tr *trace.Trace) {
	verdicts := Replay(m, tr)
	for i := range tr.Samples {
		tr.Samples[i].Alarm = verdicts[i].Alarm
		tr.Samples[i].AlarmHazard = verdicts[i].Hazard
	}
}
