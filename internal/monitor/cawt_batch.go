package monitor

import (
	"fmt"
	"sort"

	"repro/internal/scs"
)

// BatchContextAware is the context-aware monitor evaluated across a
// whole fleet shard at once: one scs.BatchStreamSet holds every
// session lane's rule-stream state in [lanes]-wide vectors, and a
// single batched push per control cycle yields every lane's alarm,
// hazard, signed margin, and rule attribution. Verdicts are
// bit-identical to running one ContextAware per session (the batched
// differential tests enforce exact equality), so a fleet can switch a
// shard between per-session and batched evaluation without changing a
// single trace — the same contract the batched ML monitors honor.
//
// It implements BatchMonitor for the fleet engine's per-shard batched
// path and exposes per-lane streaming verdicts for FromMonitor
// telemetry, preserving the one-evaluation invariant at shard scale.
type BatchContextAware struct {
	name       string
	rules      []scs.Rule
	thresholds scs.Thresholds
	params     scs.Params

	dt      float64
	streams *scs.BatchStreamSet
	width   int

	last      []scs.StreamVerdict
	lastOK    []bool
	lastFired [][]int

	states   []scs.State
	verdicts []scs.StreamVerdict
}

var _ BatchMonitor = (*BatchContextAware)(nil)

// NewBatchCAWT builds the batched context-aware monitor with learned
// thresholds.
func NewBatchCAWT(rules []scs.Rule, th scs.Thresholds, p scs.Params) (*BatchContextAware, error) {
	return newBatchContextAware("CAWT", rules, th, p)
}

// NewBatchCAWOT builds the batched context-aware baseline with default
// thresholds.
func NewBatchCAWOT(rules []scs.Rule, p scs.Params) (*BatchContextAware, error) {
	return newBatchContextAware("CAWOT", rules, scs.Defaults(rules), p)
}

func newBatchContextAware(name string, rules []scs.Rule, th scs.Thresholds, p scs.Params) (*BatchContextAware, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("monitor: %s needs at least one rule", name)
	}
	for _, r := range rules {
		if _, ok := th[r.ID]; !ok {
			return nil, fmt.Errorf("monitor: %s missing threshold for rule %d", name, r.ID)
		}
	}
	return &BatchContextAware{
		name:       name,
		rules:      rules,
		thresholds: th,
		params:     p.WithDefaults(),
		dt:         DefaultCycleMin,
	}, nil
}

// Name implements BatchMonitor.
func (m *BatchContextAware) Name() string { return m.name }

// rebuild compiles the batched rule streams at the current width and
// sampling period. Compilability was proven at construction inputs, so
// a failure here is an engine bug.
func (m *BatchContextAware) rebuild() {
	streams, err := scs.NewBatchStreamSet(m.rules, m.thresholds, m.params, m.dt, m.width)
	if err != nil {
		panic(fmt.Sprintf("monitor: %s batch compile at dt=%v width=%d: %v", m.name, m.dt, m.width, err))
	}
	m.streams = streams
}

// ResetLanes implements BatchMonitor: prepare n independent session
// lanes, clearing any per-lane rule-stream state.
func (m *BatchContextAware) ResetLanes(n int) {
	if n != m.width || m.streams == nil {
		m.width = n
		m.rebuild()
	} else {
		m.streams.Reset()
	}
	m.last = make([]scs.StreamVerdict, n)
	m.lastOK = make([]bool, n)
	m.lastFired = make([][]int, n)
	m.states = make([]scs.State, 0, n)
	m.verdicts = make([]scs.StreamVerdict, n)
}

// ResetLane implements BatchMonitor: clear one lane's rule-stream state
// (a session restarting in place).
func (m *BatchContextAware) ResetLane(lane int) {
	m.streams.ResetLane(lane)
	m.last[lane] = scs.StreamVerdict{}
	m.lastOK[lane] = false
	m.lastFired[lane] = m.lastFired[lane][:0]
}

// StepBatch implements BatchMonitor: one batched rule-stream push
// evaluates every lane's cycle, and each verdict is derived from the
// lane's StreamVerdict exactly as ContextAware.Step derives its own.
func (m *BatchContextAware) StepBatch(lanes []int, obs []Observation, out []Verdict) {
	n := len(obs)
	if n == 0 {
		return
	}
	if len(obs) > 0 && obs[0].CycleMin > 0 && obs[0].CycleMin != m.dt && m.streams.Len() == 0 {
		// Recompile at the observed sampling period before any state
		// accumulates, mirroring ContextAware.Step. Table I bodies are
		// sampling-period-free; this only matters for rule sets with
		// temporal windows.
		m.dt = obs[0].CycleMin
		m.rebuild()
	}
	m.states = m.states[:0]
	for _, o := range obs {
		m.states = append(m.states, scs.State{
			BG:       o.CGM,
			BGPrime:  o.BGPrime,
			IOB:      o.IOB,
			IOBPrime: o.IOBPrime,
			Action:   o.Action,
		})
	}
	if err := m.streams.PushLanes(lanes, m.states, m.verdicts[:n]); err != nil {
		// The push vocabulary and lane range are fixed by the engine; an
		// error here is an engine bug, not an input condition.
		panic(fmt.Sprintf("monitor: %s: %v", m.name, err))
	}
	for k := 0; k < n; k++ {
		v := m.verdicts[k]
		lane := lanes[k]
		m.last[lane], m.lastOK[lane] = v, true
		m.lastFired[lane] = append(m.lastFired[lane][:0], m.streams.Fired(k)...)
		if len(m.lastFired[lane]) > 1 {
			sort.Ints(m.lastFired[lane])
		}
		out[k] = Verdict{
			Alarm:      !v.Sat,
			Hazard:     v.Hazard,
			Margin:     v.Margin,
			Rule:       v.Rule,
			Confidence: marginConfidence(v.Margin),
		}
	}
}

// StreamVerdictLane returns the full streaming verdict of one lane's
// last step — the same single evaluation its Verdict was derived from —
// for FromMonitor telemetry. The boolean is false before the lane's
// first step (or after a lane reset).
func (m *BatchContextAware) StreamVerdictLane(lane int) (scs.StreamVerdict, bool) {
	return m.last[lane], m.lastOK[lane]
}

// FiredRulesLane returns the rule IDs that fired at one lane's last
// step, ascending.
func (m *BatchContextAware) FiredRulesLane(lane int) []int {
	out := make([]int, len(m.lastFired[lane]))
	copy(out, m.lastFired[lane])
	return out
}

// Thresholds returns the monitor's threshold table.
func (m *BatchContextAware) Thresholds() scs.Thresholds { return m.thresholds }
