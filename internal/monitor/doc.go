// Package monitor implements the paper's safety monitors: the proposed
// context-aware monitor with learned thresholds (CAWT), its unlearned
// variant (CAWOT), and the baselines — medical-guideline rules
// (Table III), model-predictive control (Eq. 6), and wrappers around
// the ML classifiers of internal/ml.
//
// Every monitor observes only the controller's input-output interface:
// the sensed glucose, a monitor-side IOB estimate, and the issued
// command (Section II's wrapper assumption).
//
// # Per-session and batched evaluation
//
// Monitors come in two execution shapes with one correctness contract:
//
//   - Monitor (Step): one session, one observation, one Verdict per
//     control cycle.
//   - BatchMonitor (StepBatch): one instance per fleet shard evaluates
//     every live session's cycle in a single call — batched DT/MLP/LSTM
//     inference (BatchML, BatchSequence) amortizes model weight
//     traffic, and the shard-batched context-aware monitor
//     (BatchContextAware) evaluates the whole shard's rule streams in
//     one struct-of-arrays push.
//
// The batching invariant: StepBatch verdicts are bit-identical to
// running the corresponding per-session Monitor on each lane — same
// alarms, hazards, margins, rule attributions, and confidences — so a
// fleet can switch between shapes without changing a single trace
// (TestFleetBatchedMonitorMatchesPerSession,
// TestBatchCAWTMatchesPerSession).
//
// The one-evaluation invariant: the streaming context-aware monitors
// own exactly one rule-stream evaluation per cycle, and alarm, hazard
// prediction, signed robustness margin, arg-min rule, fired-rule
// diagnostics, and (via StreamVerdict / StreamVerdictLane) fleet
// telemetry are all views of that single evaluation — nothing in the
// system evaluates the Safety Context Specification twice for the same
// cycle.
//
//fleetvet:deterministic
package monitor
