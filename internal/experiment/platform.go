// Package experiment is the evaluation harness of Section V: it runs
// fault-injection campaigns over the two closed-loop platforms, trains
// and evaluates the monitor suite, and regenerates every table and
// figure of the paper's evaluation (see DESIGN.md for the index).
package experiment

import (
	"fmt"

	"repro/internal/closedloop"
	"repro/internal/control"
	"repro/internal/sim"
	"repro/internal/sim/glucosym"
	"repro/internal/sim/uvapadova"
)

// Platform couples a patient simulator with its controller, matching the
// paper's two test beds (Fig. 5a): Glucosym + OpenAPS and UVA-Padova
// T1DS2013 + Basal-Bolus.
type Platform struct {
	Name        string
	NumPatients int
	// NewPatient builds cohort patient idx.
	NewPatient func(idx int) (closedloop.Patient, error)
	// NewBatchPatient builds a struct-of-arrays bank of lanes patients
	// for shard-batched fleet stepping; nil platforms step per session.
	NewBatchPatient func(lanes int) (sim.BatchPatient, error)
	// NewController builds the platform's controller for a patient with
	// the given basal rate.
	NewController func(basalUPerH float64) (control.Controller, error)
}

// isfFor derives an insulin sensitivity factor from the basal rate via
// the 1800-rule on an estimated total daily dose (basal is roughly half
// the TDD), clamped to the clinically plausible range.
func isfFor(basal float64) float64 {
	tdd := basal * 24 * 2
	isf := 1800 / tdd
	if isf < 15 {
		isf = 15
	}
	if isf > 120 {
		isf = 120
	}
	return isf
}

// Glucosym returns the main platform: MVP-model cohort + OpenAPS.
func Glucosym() Platform {
	return Platform{
		Name:        "glucosym",
		NumPatients: glucosym.NumPatients,
		NewPatient: func(idx int) (closedloop.Patient, error) {
			return glucosym.New(idx)
		},
		NewBatchPatient: func(lanes int) (sim.BatchPatient, error) {
			return glucosym.NewBatch(lanes)
		},
		NewController: func(basal float64) (control.Controller, error) {
			return control.NewOpenAPS(control.OpenAPSConfig{
				Basal: basal,
				ISF:   isfFor(basal),
			})
		},
	}
}

// T1DS2013 returns the generalization platform: Dalla Man cohort +
// Basal-Bolus controller.
func T1DS2013() Platform {
	return Platform{
		Name:        "t1ds2013",
		NumPatients: uvapadova.NumPatients,
		NewPatient: func(idx int) (closedloop.Patient, error) {
			return uvapadova.New(idx)
		},
		NewBatchPatient: func(lanes int) (sim.BatchPatient, error) {
			return uvapadova.NewBatch(lanes)
		},
		NewController: func(basal float64) (control.Controller, error) {
			return control.NewBasalBolus(control.BasalBolusConfig{
				Basal: basal,
				ISF:   isfFor(basal),
			})
		},
	}
}

// Platforms returns both test beds.
func Platforms() []Platform {
	return []Platform{Glucosym(), T1DS2013()}
}

// PlatformByName resolves a platform.
func PlatformByName(name string) (Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("experiment: unknown platform %q (want glucosym or t1ds2013)", name)
}
