package experiment

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/stllearn"
	"repro/internal/trace"
)

// quickCampaign runs a thinned campaign on two patients for test speed.
func quickCampaign(t *testing.T, plat Platform) []*trace.Trace {
	t.Helper()
	traces, err := Run(CampaignConfig{
		Platform:  plat,
		Patients:  []int{0, 4},
		Scenarios: ScenarioSubset(12),
	})
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

func TestPlatformByName(t *testing.T) {
	for _, name := range []string{"glucosym", "t1ds2013"} {
		p, err := PlatformByName(name)
		if err != nil || p.Name != name {
			t.Errorf("PlatformByName(%q): %v, %v", name, p.Name, err)
		}
	}
	if _, err := PlatformByName("nope"); err == nil {
		t.Error("unknown platform should fail")
	}
}

func TestPlatformConstruction(t *testing.T) {
	for _, plat := range Platforms() {
		p, err := plat.NewPatient(0)
		if err != nil {
			t.Fatalf("%s patient: %v", plat.Name, err)
		}
		ctrl, err := plat.NewController(p.Basal())
		if err != nil {
			t.Fatalf("%s controller: %v", plat.Name, err)
		}
		if ctrl.Name() == "" {
			t.Error("controller has no name")
		}
	}
}

func TestISFClamping(t *testing.T) {
	if isf := isfFor(0.1); isf != 120 {
		t.Errorf("tiny basal ISF %v, want clamp 120", isf)
	}
	if isf := isfFor(10); isf != 15 {
		t.Errorf("huge basal ISF %v, want clamp 15", isf)
	}
	if isf := isfFor(1.3); isf < 20 || isf > 40 {
		t.Errorf("typical basal ISF %v, want ~29", isf)
	}
}

func TestScenarioSubset(t *testing.T) {
	all := ScenarioSubset(1)
	if len(all) != 882 {
		t.Fatalf("full campaign %d, want 882", len(all))
	}
	sub := ScenarioSubset(10)
	if len(sub) != 89 {
		t.Errorf("1-in-10 subset has %d scenarios", len(sub))
	}
}

func TestCampaignDeterministicOrder(t *testing.T) {
	plat := Glucosym()
	run := func() []*trace.Trace {
		traces, err := Run(CampaignConfig{
			Platform:  plat,
			Patients:  []int{0},
			Scenarios: ScenarioSubset(40),
			Parallel:  4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return traces
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].Fault != b[i].Fault || a[i].InitialBG != b[i].InitialBG {
			t.Fatalf("trace %d ordering not deterministic", i)
		}
		for j := range a[i].Samples {
			if a[i].Samples[j] != b[i].Samples[j] {
				t.Fatalf("trace %d sample %d differs across runs", i, j)
			}
		}
	}
}

// TestCampaignGoldenDeterminism is the campaign-side golden test: the
// serialized traces of a campaign are byte-identical at Parallel=1 and
// Parallel=NumCPU (the fleet engine's scheduling never leaks into
// results).
func TestCampaignGoldenDeterminism(t *testing.T) {
	run := func(parallel int) []byte {
		traces, err := Run(CampaignConfig{
			Platform:  Glucosym(),
			Patients:  []int{0, 7},
			Scenarios: ScenarioSubset(50),
			Steps:     50,
			Parallel:  parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tr := range traces {
			if err := tr.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	golden := run(1)
	if got := run(runtime.NumCPU()); !bytes.Equal(got, golden) {
		t.Fatal("campaign traces differ between Parallel=1 and Parallel=NumCPU")
	}
}

func TestFaultFreeRuns(t *testing.T) {
	traces, err := FaultFree(Glucosym(), []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != len(fault.DefaultInitialBGs) {
		t.Fatalf("%d fault-free traces", len(traces))
	}
	for _, tr := range traces {
		if tr.Faulty() {
			t.Error("fault-free trace marked faulty")
		}
	}
}

func TestByPatient(t *testing.T) {
	traces := quickCampaign(t, Glucosym())
	groups := ByPatient(traces)
	if len(groups) != 2 {
		t.Fatalf("%d patient groups, want 2", len(groups))
	}
}

func TestSuiteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("suite training is seconds-long")
	}
	plat := Glucosym()
	traces := quickCampaign(t, plat)
	folds := stllearn.Folds(traces, 4)
	train := stllearn.TrainingSet(folds, 0)
	test := folds[0]
	ff, err := FaultFree(plat, []int{0, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := BuildSuite(plat, train, ff, SuiteConfig{
		Seed: 1, MaxMLSamples: 3000, MaxLSTMWindows: 500,
		MLPEpochs: 3, LSTMEpochs: 2,
		MLPHidden: []int{16}, LSTMUnits: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Thresholds learned per patient.
	if len(suite.PatientThresholds) == 0 {
		t.Error("no patient thresholds")
	}
	if suite.Lambda10 >= suite.Lambda90 {
		t.Errorf("percentiles %v/%v", suite.Lambda10, suite.Lambda90)
	}

	// Every monitor evaluates.
	evals, err := suite.EvaluateAll(nil, test)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != len(MonitorNames) {
		t.Fatalf("%d evals", len(evals))
	}
	for _, ev := range evals {
		total := ev.Sample.TP + ev.Sample.FP + ev.Sample.FN + ev.Sample.TN
		if total == 0 {
			t.Errorf("%s: empty sample confusion", ev.Monitor)
		}
		if ev.StepTime <= 0 {
			t.Errorf("%s: no step time", ev.Monitor)
		}
	}

	// Rendering produces non-empty output.
	if out := RenderEvals("test", evals); !strings.Contains(out, "CAWT") {
		t.Error("RenderEvals missing CAWT row")
	}
	if out := RenderReaction(evals); !strings.Contains(out, "early-detection") {
		t.Error("RenderReaction malformed")
	}

	// Unknown monitor is rejected.
	if _, err := suite.NewMonitor("bogus", "p"); err == nil {
		t.Error("unknown monitor should fail")
	}

	// Table VIII comparison runs.
	rows, err := suite.TableVIII(test, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("no Table VIII rows")
	}
	if out := RenderTableVIII(rows); !strings.Contains(out, "population") {
		t.Error("RenderTableVIII malformed")
	}

	// Mitigation rerun on a small scenario set.
	scen := ScenarioSubset(60)
	baseline, err := Run(CampaignConfig{Platform: plat, Patients: []int{0}, Scenarios: scen})
	if err != nil {
		t.Fatal(err)
	}
	res, err := suite.EvaluateMitigation("CAWT", baseline, CampaignConfig{
		Patients: []int{0}, Scenarios: scen,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Monitor != "CAWT" {
		t.Errorf("monitor %q", res.Monitor)
	}
	if out := RenderMitigation([]MitigationResult{res}); !strings.Contains(out, "recovery") {
		t.Error("RenderMitigation malformed")
	}
}

func TestFigures(t *testing.T) {
	traces := quickCampaign(t, Glucosym())
	cov := HazardCoverageByPatient(traces)
	if len(cov.Patients) != 2 {
		t.Fatalf("%d patients in coverage", len(cov.Patients))
	}
	if cov.Overall < 0 || cov.Overall > 1 {
		t.Errorf("overall coverage %v", cov.Overall)
	}
	if !strings.Contains(cov.Render(), "Fig 7a") {
		t.Error("coverage render malformed")
	}

	tth := TTHDistribution(traces)
	if tth.Count == 0 {
		t.Error("no TTH values — campaign produced no hazards")
	}
	if !strings.Contains(RenderTTH(tth), "Fig 7b") {
		t.Error("TTH render malformed")
	}

	fig8 := CoverageByFaultAndBG(traces)
	if len(fig8.Faults) == 0 || len(fig8.InitialBG) == 0 {
		t.Error("empty Fig 8 matrix")
	}
	if !strings.Contains(fig8.Render(), "Fig 8") {
		t.Error("Fig 8 render malformed")
	}

	curves := LossCurves(-2, 4, 25)
	if len(curves.Margins) != 25 || len(curves.Curves) != 4 {
		t.Errorf("loss curves %d margins, %d curves", len(curves.Margins), len(curves.Curves))
	}
	if !strings.Contains(curves.Render(), "TMEE") {
		t.Error("loss render missing TMEE")
	}
}

func TestRunValidatesJobs(t *testing.T) {
	plat := Glucosym()
	_, err := Run(CampaignConfig{
		Platform: plat,
		Patients: []int{99}, // out of cohort
		Scenarios: []fault.Scenario{
			{Fault: fault.Fault{Kind: fault.KindMax, Target: "glucose", Value: 400, StartStep: 0, Duration: 5}, InitialBG: 120},
		},
	})
	if err == nil {
		t.Error("invalid patient index should fail")
	}
}
