package experiment

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/stllearn"
	"repro/internal/trace"
)

// LossAblationRow compares threshold learning under one loss function.
type LossAblationRow struct {
	Loss      string
	Converged int // rules that converged
	Learned   int // rules with data-driven thresholds
	Eval      Eval
}

// LossAblation learns patient-specific CAWT thresholds under each
// candidate loss and evaluates the resulting monitors, reproducing the
// paper's claim that TMEE outperforms the TeLEx tightness metric and the
// MSE/MAE strawmen (Section III-C2, Fig. 3).
func LossAblation(training, test []*trace.Trace) ([]LossAblationRow, error) {
	losses := []stllearn.Loss{stllearn.TMEE{}, stllearn.TeLEx{}, stllearn.MSE{}, stllearn.MAE{}}
	rules := scs.TableI()
	out := make([]LossAblationRow, 0, len(losses))
	for _, loss := range losses {
		per, err := stllearn.LearnPerPatient(rules, training, stllearn.Config{Loss: loss})
		if err != nil {
			return nil, err
		}
		row := LossAblationRow{Loss: loss.Name()}
		// Convergence bookkeeping from a population-level fit.
		_, report, err := stllearn.Learn(rules, training, stllearn.Config{Loss: loss})
		if err != nil {
			return nil, err
		}
		for _, r := range report.Rules {
			if r.Converged {
				row.Converged++
			}
			if !r.UsedDefault {
				row.Learned++
			}
		}
		row.Eval, err = evaluatePerPatient(loss.Name(), rules, per, test)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderLossAblation prints the comparison.
func RenderLossAblation(rows []LossAblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation — STL learning loss (patient-specific thresholds)\n")
	fmt.Fprintf(&b, "  %-8s %9s %8s %6s %6s %6s %8s\n",
		"loss", "converged", "learned", "FPR", "FNR", "ACC", "F1")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %9d %8d %6.3f %6.3f %6.3f %8.3f\n",
			r.Loss, r.Converged, r.Learned,
			r.Eval.Sample.FPR(), r.Eval.Sample.FNR(),
			r.Eval.Sample.Accuracy(), r.Eval.Sample.F1())
	}
	return b.String()
}

// AdversarialAblationResult compares thresholds learned from fault-free
// traces against adversarially trained ones (Section VI: "Adversarial
// training improves safety monitor performance").
type AdversarialAblationResult struct {
	FaultFreeTrained Eval
	Adversarial      Eval
}

// AdversarialAblation learns patient-specific thresholds from fault-free
// traces only and from the faulty campaign, evaluating both on the test
// set.
func AdversarialAblation(faultFree, training, test []*trace.Trace) (AdversarialAblationResult, error) {
	rules := scs.TableI()
	var out AdversarialAblationResult

	perFF, err := stllearn.LearnPerPatient(rules, faultFree, stllearn.Config{})
	if err != nil {
		return out, err
	}
	if out.FaultFreeTrained, err = evaluatePerPatient("CAWT-faultfree", rules, perFF, test); err != nil {
		return out, err
	}

	perAdv, err := stllearn.LearnPerPatient(rules, training, stllearn.Config{})
	if err != nil {
		return out, err
	}
	if out.Adversarial, err = evaluatePerPatient("CAWT-adversarial", rules, perAdv, test); err != nil {
		return out, err
	}
	return out, nil
}

// RenderAdversarialAblation prints the comparison.
func RenderAdversarialAblation(r AdversarialAblationResult) string {
	var b strings.Builder
	b.WriteString("Ablation — adversarial (fault-injected) vs fault-free training\n")
	fmt.Fprintf(&b, "  %-18s %6s %6s %6s %8s %6s\n", "training data", "FPR", "FNR", "ACC", "F1", "EDR")
	for _, row := range []struct {
		name string
		e    Eval
	}{
		{"fault-free only", r.FaultFreeTrained},
		{"adversarial (FI)", r.Adversarial},
	} {
		fmt.Fprintf(&b, "  %-18s %6.3f %6.3f %6.3f %8.3f %5.1f%%\n",
			row.name,
			row.e.Sample.FPR(), row.e.Sample.FNR(),
			row.e.Sample.Accuracy(), row.e.Sample.F1(),
			100*row.e.Reaction.EarlyRate)
	}
	return b.String()
}

// FaultFreeGeneralization evaluates already-trained monitors on
// fault-free traces (Section VI: fully supervised ML monitors overfit the
// faulty training distribution; the weakly supervised CAWT barely moves).
// On hazard-free data F1 is undefined, so the comparison reports FPR: the
// fraction of clean samples that still trip the monitor.
type FaultFreeGeneralization struct {
	Monitor      string
	FaultyFPR    float64
	FaultFreeFPR float64
}

// EvaluateFaultFreeGeneralization computes the comparison for the named
// monitors.
func (s *Suite) EvaluateFaultFreeGeneralization(names []string, faulty, faultFree []*trace.Trace) ([]FaultFreeGeneralization, error) {
	out := make([]FaultFreeGeneralization, 0, len(names))
	for _, name := range names {
		evF, err := s.EvaluateMonitor(name, faulty)
		if err != nil {
			return nil, err
		}
		evC, err := s.EvaluateMonitor(name, faultFree)
		if err != nil {
			return nil, err
		}
		out = append(out, FaultFreeGeneralization{
			Monitor:      name,
			FaultyFPR:    evF.Sample.FPR(),
			FaultFreeFPR: evC.Sample.FPR(),
		})
	}
	return out, nil
}

// RenderFaultFreeGeneralization prints the comparison.
func RenderFaultFreeGeneralization(rows []FaultFreeGeneralization) string {
	var b strings.Builder
	b.WriteString("Ablation — false-positive rate on faulty vs fault-free data\n")
	fmt.Fprintf(&b, "  %-10s %12s %14s\n", "monitor", "faulty FPR", "fault-free FPR")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %12.3f %14.3f\n", r.Monitor, r.FaultyFPR, r.FaultFreeFPR)
	}
	return b.String()
}

// evaluatePerPatient scores patient-specific CAWT monitors built from a
// per-patient threshold map. Patients without a learned table fall back
// to the rule defaults.
func evaluatePerPatient(name string, rules []scs.Rule, per map[string]scs.Thresholds, traces []*trace.Trace) (Eval, error) {
	ev := Eval{Monitor: name}
	monitors := make(map[string]monitor.Monitor, len(per))
	for _, tr := range traces {
		m, ok := monitors[tr.PatientID]
		if !ok {
			th, found := per[tr.PatientID]
			if !found {
				th = scs.Defaults(rules)
			}
			var err error
			m, err = monitor.NewCAWT(rules, th, scs.Params{})
			if err != nil {
				return Eval{}, err
			}
			monitors[tr.PatientID] = m
		}
		monitor.Annotate(m, tr)
		ev.Sample.Add(metrics.SampleLevel(tr, 0))
		ev.Simulation.Add(metrics.SimulationLevel(tr))
	}
	ev.Reaction = metrics.ReactionTime(traces)
	return ev, nil
}
