package experiment

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// Eval is one monitor's evaluation over a trace set.
type Eval struct {
	Monitor    string
	Sample     metrics.Confusion
	Simulation metrics.Confusion
	Reaction   metrics.ReactionStats
	// StepTime is the mean wall-clock cost of one monitor step
	// (Section V-E6's resource-utilization comparison).
	StepTime time.Duration
}

// EvaluateMonitor replays a monitor over every trace (instantiated per
// patient), annotates alarms in place, and aggregates the paper's
// accuracy and timeliness metrics.
func (s *Suite) EvaluateMonitor(name string, traces []*trace.Trace) (Eval, error) {
	ev := Eval{Monitor: name}
	monitors := make(map[string]monitor.Monitor)
	var steps int
	var elapsed time.Duration
	for _, tr := range traces {
		m, ok := monitors[tr.PatientID]
		if !ok {
			var err error
			m, err = s.NewMonitor(name, tr.PatientID)
			if err != nil {
				return Eval{}, fmt.Errorf("experiment: %s for %s: %w", name, tr.PatientID, err)
			}
			monitors[tr.PatientID] = m
		}
		start := time.Now()
		monitor.Annotate(m, tr)
		elapsed += time.Since(start)
		steps += tr.Len()

		ev.Sample.Add(metrics.SampleLevel(tr, 0))
		ev.Simulation.Add(metrics.SimulationLevel(tr))
	}
	ev.Reaction = metrics.ReactionTime(traces)
	if steps > 0 {
		ev.StepTime = elapsed / time.Duration(steps)
	}
	return ev, nil
}

// EvaluateAll runs every named monitor over the trace set.
func (s *Suite) EvaluateAll(names []string, traces []*trace.Trace) ([]Eval, error) {
	if len(names) == 0 {
		names = MonitorNames
	}
	out := make([]Eval, 0, len(names))
	for _, name := range names {
		ev, err := s.EvaluateMonitor(name, traces)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// MitigationResult is one monitor's Table VII row.
type MitigationResult struct {
	Monitor string
	Outcome metrics.MitigationOutcome
}

// EvaluateMitigation reruns the campaign scenarios with the monitor in
// the loop and Algorithm 1 enabled, comparing against the baseline
// (no-monitor) traces of the same scenarios.
func (s *Suite) EvaluateMitigation(name string, baseline []*trace.Trace, cfg CampaignConfig) (MitigationResult, error) {
	cfg.Platform = s.Platform
	cfg.Mitigate = true
	cfg.NewMonitor = func(patientIdx int) (monitor.Monitor, error) {
		p, err := s.Platform.NewPatient(patientIdx)
		if err != nil {
			return nil, err
		}
		return s.NewMonitor(name, p.ID())
	}
	mitigated, err := Run(cfg)
	if err != nil {
		return MitigationResult{}, err
	}
	if len(mitigated) != len(baseline) {
		return MitigationResult{}, fmt.Errorf("experiment: mitigated %d traces vs baseline %d — configs must match",
			len(mitigated), len(baseline))
	}
	return MitigationResult{
		Monitor: name,
		Outcome: metrics.Mitigation(baseline, mitigated),
	}, nil
}
