package experiment

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// Eval is one monitor's evaluation over a trace set.
type Eval struct {
	Monitor    string
	Sample     metrics.Confusion
	Simulation metrics.Confusion
	Reaction   metrics.ReactionStats
	// StepTime is the mean wall-clock cost of one monitor step
	// (Section V-E6's resource-utilization comparison).
	StepTime time.Duration

	// The richer verdict view, populated for margin-carrying monitors
	// (zero MarginSamples otherwise): per-rule alarm attribution and the
	// margin distribution, read from the same replayed verdicts as the
	// confusion matrices — no extra evaluation pass.
	//
	// RuleAttribution counts alarmed cycles by the verdict's arg-min
	// rule ID; MeanAlarmMargin averages the (negative) violation depth
	// over alarmed cycles; MeanSafeMargin averages the distance to the
	// nearest rule boundary over silent cycles.
	RuleAttribution map[int]int
	MeanAlarmMargin float64
	MeanSafeMargin  float64
	MarginSamples   int
}

// EvaluateMonitor replays a monitor over every trace (instantiated per
// patient), annotates alarms in place, and aggregates the paper's
// accuracy and timeliness metrics plus the rule/margin attribution the
// richer verdicts carry.
func (s *Suite) EvaluateMonitor(name string, traces []*trace.Trace) (Eval, error) {
	ev := Eval{Monitor: name, RuleAttribution: make(map[int]int)}
	monitors := make(map[string]monitor.Monitor)
	var steps int
	var elapsed time.Duration
	var alarmMarginSum, safeMarginSum float64
	var alarmMargins, safeMargins int
	for _, tr := range traces {
		m, ok := monitors[tr.PatientID]
		if !ok {
			var err error
			m, err = s.NewMonitor(name, tr.PatientID)
			if err != nil {
				return Eval{}, fmt.Errorf("experiment: %s for %s: %w", name, tr.PatientID, err)
			}
			monitors[tr.PatientID] = m
		}
		start := time.Now()
		verdicts := monitor.Replay(m, tr)
		elapsed += time.Since(start)
		steps += tr.Len()
		for i := range tr.Samples {
			v := &verdicts[i]
			tr.Samples[i].Alarm = v.Alarm
			tr.Samples[i].AlarmHazard = v.Hazard
			if v.Rule == 0 {
				continue // monitor carries no rule attribution
			}
			if v.Alarm {
				ev.RuleAttribution[v.Rule]++
				alarmMarginSum += v.Margin
				alarmMargins++
			} else {
				safeMarginSum += v.Margin
				safeMargins++
			}
		}

		ev.Sample.Add(metrics.SampleLevel(tr, 0))
		ev.Simulation.Add(metrics.SimulationLevel(tr))
	}
	ev.Reaction = metrics.ReactionTime(traces)
	if steps > 0 {
		ev.StepTime = elapsed / time.Duration(steps)
	}
	ev.MarginSamples = alarmMargins + safeMargins
	if alarmMargins > 0 {
		ev.MeanAlarmMargin = alarmMarginSum / float64(alarmMargins)
	}
	if safeMargins > 0 {
		ev.MeanSafeMargin = safeMarginSum / float64(safeMargins)
	}
	return ev, nil
}

// EvaluateAll runs every named monitor over the trace set.
func (s *Suite) EvaluateAll(names []string, traces []*trace.Trace) ([]Eval, error) {
	if len(names) == 0 {
		names = MonitorNames
	}
	out := make([]Eval, 0, len(names))
	for _, name := range names {
		ev, err := s.EvaluateMonitor(name, traces)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// MitigationResult is one monitor's Table VII row.
type MitigationResult struct {
	Monitor string
	Outcome metrics.MitigationOutcome
}

// EvaluateMitigation reruns the campaign scenarios with the monitor in
// the loop and Algorithm 1 enabled, comparing against the baseline
// (no-monitor) traces of the same scenarios.
func (s *Suite) EvaluateMitigation(name string, baseline []*trace.Trace, cfg CampaignConfig) (MitigationResult, error) {
	cfg.Platform = s.Platform
	cfg.Mitigate = true
	cfg.NewMonitor = func(patientIdx int) (monitor.Monitor, error) {
		p, err := s.Platform.NewPatient(patientIdx)
		if err != nil {
			return nil, err
		}
		return s.NewMonitor(name, p.ID())
	}
	mitigated, err := Run(cfg)
	if err != nil {
		return MitigationResult{}, err
	}
	if len(mitigated) != len(baseline) {
		return MitigationResult{}, fmt.Errorf("experiment: mitigated %d traces vs baseline %d — configs must match",
			len(mitigated), len(baseline))
	}
	return MitigationResult{
		Monitor: name,
		Outcome: metrics.Mitigation(baseline, mitigated),
	}, nil
}
