package experiment

import (
	"repro/internal/monitor"
	"repro/internal/trace"
)

// ObservationForBench returns a representative mid-campaign observation
// used by the monitor-overhead microbenchmarks (Section V-E6): a
// hyperglycemic, rising state with active insulin on board.
func ObservationForBench() monitor.Observation {
	return monitor.Observation{
		Step: 60, TimeMin: 300, CycleMin: 5,
		CGM: 190, BGPrime: 1.2, IOB: 1.4, IOBPrime: -0.01,
		Rate: 2.6, PrevRate: 2.2, Action: trace.ActionIncrease,
		Basal: 1.3,
	}
}
