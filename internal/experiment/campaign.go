package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/closedloop"
	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/risk"
	"repro/internal/trace"
)

// CampaignConfig describes one fault-injection campaign.
type CampaignConfig struct {
	Platform Platform
	// Patients selects cohort indices; nil means the whole cohort.
	Patients []int
	// Scenarios selects the fault matrix; nil means the full 882-per-
	// patient campaign of Section V-B.
	Scenarios []fault.Scenario
	// Steps per simulation (default 150 = 12.5 h of 5-minute cycles).
	Steps int
	// NewMonitor optionally builds a per-run safety monitor (it must be
	// a fresh instance per concurrent runner); nil runs without one.
	NewMonitor func(patientIdx int) (monitor.Monitor, error)
	// Mitigate enables Algorithm 1 when a monitor is attached.
	Mitigate bool
	// Parallel bounds worker goroutines (default NumCPU).
	Parallel int
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if len(c.Patients) == 0 {
		c.Patients = make([]int, c.Platform.NumPatients)
		for i := range c.Patients {
			c.Patients[i] = i
		}
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = fault.Campaign(nil)
	}
	if c.Steps == 0 {
		c.Steps = 150
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	return c
}

// job identifies one simulation of the campaign.
type job struct {
	patientIdx int
	scenario   fault.Scenario
	out        int // index into the result slice
}

// Run executes the campaign and returns labeled traces in deterministic
// order (patients outer, scenarios inner), regardless of scheduling.
func Run(cfg CampaignConfig) ([]*trace.Trace, error) {
	cfg = cfg.withDefaults()
	jobs := make([]job, 0, len(cfg.Patients)*len(cfg.Scenarios))
	for _, p := range cfg.Patients {
		for _, sc := range cfg.Scenarios {
			jobs = append(jobs, job{patientIdx: p, scenario: sc, out: len(jobs)})
		}
	}
	results := make([]*trace.Trace, len(jobs))
	errs := make([]error, len(jobs))

	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				results[j.out], errs[j.out] = runOne(cfg, j)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: job %d (patient %d, %s): %w",
				i, jobs[i].patientIdx, jobs[i].scenario.Fault.Name(), err)
		}
	}
	return results, nil
}

func runOne(cfg CampaignConfig, j job) (*trace.Trace, error) {
	patient, err := cfg.Platform.NewPatient(j.patientIdx)
	if err != nil {
		return nil, err
	}
	ctrl, err := cfg.Platform.NewController(patient.Basal())
	if err != nil {
		return nil, err
	}
	var mon monitor.Monitor
	if cfg.NewMonitor != nil {
		mon, err = cfg.NewMonitor(j.patientIdx)
		if err != nil {
			return nil, err
		}
	}
	loopCfg := closedloop.Config{
		Platform:   cfg.Platform.Name + "/" + ctrl.Name(),
		Steps:      cfg.Steps,
		InitialBG:  j.scenario.InitialBG,
		Patient:    patient,
		Controller: ctrl,
		Monitor:    mon,
		Mitigation: closedloop.MitigationConfig{Enabled: cfg.Mitigate && mon != nil},
		Labeler:    risk.Labeler{},
	}
	if j.scenario.Fault.Duration > 0 {
		f := j.scenario.Fault
		loopCfg.Fault = &f
	}
	return closedloop.Run(loopCfg)
}

// FaultFree runs the fault-free scenario set (one run per initial BG per
// patient), used for percentile estimation, fault-free training, and the
// OpenAPS resilience baseline.
func FaultFree(platform Platform, patients []int, steps int) ([]*trace.Trace, error) {
	return Run(CampaignConfig{
		Platform:  platform,
		Patients:  patients,
		Scenarios: fault.FaultFreeScenarios(nil),
		Steps:     steps,
	})
}

// ByPatient groups traces by patient ID.
func ByPatient(traces []*trace.Trace) map[string][]*trace.Trace {
	out := make(map[string][]*trace.Trace)
	for _, tr := range traces {
		out[tr.PatientID] = append(out[tr.PatientID], tr)
	}
	return out
}
