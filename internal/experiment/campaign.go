package experiment

import (
	"context"
	"fmt"

	"repro/internal/closedloop"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// CampaignConfig describes one fault-injection campaign.
type CampaignConfig struct {
	Platform Platform
	// Patients selects cohort indices; nil means the whole cohort.
	Patients []int
	// Scenarios selects the fault matrix; nil means the full 882-per-
	// patient campaign of Section V-B.
	Scenarios []fault.Scenario
	// Steps per simulation (default 150 = 12.5 h of 5-minute cycles).
	Steps int
	// NewMonitor optionally builds a per-run safety monitor (it must be
	// a fresh instance per concurrent runner); nil runs without one.
	NewMonitor func(patientIdx int) (monitor.Monitor, error)
	// Mitigate enables Algorithm 1 when a monitor is attached.
	Mitigate bool
	// Mitigation tunes the enabled mitigation (e.g. ScaleByMargin); the
	// Enabled flag itself is owned by Mitigate.
	Mitigation closedloop.MitigationConfig
	// Parallel bounds worker goroutines (default NumCPU).
	Parallel int
}

// FleetConfig translates the campaign description into its fleet
// equivalent: one run-to-completion session per patient x scenario pair,
// traces retained in deterministic order (patients outer, scenarios
// inner). Legacy enum scenarios bridge into scenario programs here, so
// every campaign executes through the compiled-plan path (bit-identical
// to the enum path — the fleet golden differential pins it).
func (c CampaignConfig) FleetConfig() fleet.Config {
	return fleet.Config{
		Platform:   fleet.Platform(c.Platform),
		Patients:   c.Patients,
		Scenarios:  fault.Programs(c.Scenarios),
		Steps:      c.Steps,
		Parallel:   c.Parallel,
		NewMonitor: c.NewMonitor,
		Mitigate:   c.Mitigate,
		Mitigation: c.Mitigation,
	}
}

// Run executes the campaign on the fleet engine and returns labeled
// traces in deterministic order (patients outer, scenarios inner),
// regardless of scheduling.
func Run(cfg CampaignConfig) ([]*trace.Trace, error) {
	res, err := fleet.Run(context.Background(), cfg.FleetConfig())
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return res.Traces, nil
}

// FaultFree runs the fault-free scenario set (one run per initial BG per
// patient), used for percentile estimation, fault-free training, and the
// OpenAPS resilience baseline.
func FaultFree(platform Platform, patients []int, steps int) ([]*trace.Trace, error) {
	return Run(CampaignConfig{
		Platform:  platform,
		Patients:  patients,
		Scenarios: fault.FaultFreeScenarios(nil),
		Steps:     steps,
	})
}

// ByPatient groups traces by patient ID.
func ByPatient(traces []*trace.Trace) map[string][]*trace.Trace {
	out := make(map[string][]*trace.Trace)
	for _, tr := range traces {
		out[tr.PatientID] = append(out[tr.PatientID], tr)
	}
	return out
}
