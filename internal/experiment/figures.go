package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/stllearn"
	"repro/internal/trace"
)

// Fig7a: per-patient hazard coverage of the baseline (no-monitor)
// campaign, plus the overall mean.
type CoverageByPatient struct {
	Patients []string
	Coverage []float64
	Overall  float64
}

// HazardCoverageByPatient reproduces Fig. 7a.
func HazardCoverageByPatient(traces []*trace.Trace) CoverageByPatient {
	groups := ByPatient(traces)
	ids := make([]string, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := CoverageByPatient{Patients: ids}
	for _, id := range ids {
		out.Coverage = append(out.Coverage, metrics.HazardCoverage(groups[id]))
	}
	out.Overall = metrics.HazardCoverage(traces)
	return out
}

// Render prints the figure as a text bar chart.
func (c CoverageByPatient) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7a — Hazard coverage by patient (overall %.1f%%)\n", 100*c.Overall)
	for i, id := range c.Patients {
		fmt.Fprintf(&b, "  %-14s %6.1f%% %s\n", id, 100*c.Coverage[i], bar(c.Coverage[i], 40))
	}
	return b.String()
}

// TTHDistribution reproduces Fig. 7b.
func TTHDistribution(traces []*trace.Trace) metrics.TTHStats {
	return metrics.TTH(traces)
}

// RenderTTH prints the TTH histogram and summary.
func RenderTTH(st metrics.TTHStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7b — Time-to-Hazard: n=%d mean=%.0f min median=%.0f min range=[%.0f,%.0f] negative=%.1f%%\n",
		st.Count, st.MeanMin, st.MedianMin, st.MinMin, st.MaxMin, 100*st.NegativeFrac)
	if st.Count == 0 {
		return b.String()
	}
	// Histogram in 60-minute buckets.
	buckets := map[int]int{}
	minB, maxB := 1<<30, -(1 << 30)
	for _, v := range st.Values {
		k := int(v) / 60
		if v < 0 {
			k = int(v)/60 - 1
		}
		buckets[k]++
		if k < minB {
			minB = k
		}
		if k > maxB {
			maxB = k
		}
	}
	for k := minB; k <= maxB; k++ {
		frac := float64(buckets[k]) / float64(st.Count)
		fmt.Fprintf(&b, "  [%4dh,%4dh) %5.1f%% %s\n", k, k+1, 100*frac, bar(frac, 40))
	}
	return b.String()
}

// FaultBGCoverage is Fig. 8: hazard coverage by fault name and initial BG.
type FaultBGCoverage struct {
	Faults    []string // "kind:target"
	InitialBG []float64
	// Coverage[fault][bg] in the above orders.
	Coverage [][]float64
}

// CoverageByFaultAndBG reproduces Fig. 8 from baseline campaign traces.
func CoverageByFaultAndBG(traces []*trace.Trace) FaultBGCoverage {
	type key struct {
		fault string
		bg    float64
	}
	counts := map[key][2]int{} // {hazardous, total}
	faultSet := map[string]bool{}
	bgSet := map[float64]bool{}
	for _, tr := range traces {
		if !tr.Faulty() {
			continue
		}
		k := key{fault: tr.Fault.Name, bg: tr.InitialBG}
		c := counts[k]
		c[1]++
		if tr.Hazardous() {
			c[0]++
		}
		counts[k] = c
		faultSet[tr.Fault.Name] = true
		bgSet[tr.InitialBG] = true
	}
	out := FaultBGCoverage{}
	for f := range faultSet {
		out.Faults = append(out.Faults, f)
	}
	sort.Strings(out.Faults)
	for bg := range bgSet {
		out.InitialBG = append(out.InitialBG, bg)
	}
	sort.Float64s(out.InitialBG)
	out.Coverage = make([][]float64, len(out.Faults))
	for i, f := range out.Faults {
		out.Coverage[i] = make([]float64, len(out.InitialBG))
		for j, bg := range out.InitialBG {
			c := counts[key{fault: f, bg: bg}]
			if c[1] > 0 {
				out.Coverage[i][j] = float64(c[0]) / float64(c[1])
			}
		}
	}
	return out
}

// Render prints the Fig. 8 matrix.
func (f FaultBGCoverage) Render() string {
	var b strings.Builder
	b.WriteString("Fig 8 — Hazard coverage by fault type and initial BG\n")
	fmt.Fprintf(&b, "  %-18s", "fault")
	for _, bg := range f.InitialBG {
		fmt.Fprintf(&b, " %6.0f", bg)
	}
	b.WriteString("\n")
	for i, name := range f.Faults {
		fmt.Fprintf(&b, "  %-18s", name)
		for j := range f.InitialBG {
			fmt.Fprintf(&b, " %5.0f%%", 100*f.Coverage[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// LossCurves reproduces Fig. 3: the four loss functions sampled over a
// margin range.
type LossCurvesResult struct {
	Margins []float64
	Curves  map[string][]float64
}

// LossCurves samples MSE/MAE (Fig. 3a) and TeLEx/TMEE (Fig. 3b).
func LossCurves(lo, hi float64, n int) LossCurvesResult {
	losses := []stllearn.Loss{stllearn.MSE{}, stllearn.MAE{}, stllearn.TeLEx{}, stllearn.TMEE{}}
	out := LossCurvesResult{Curves: make(map[string][]float64, len(losses))}
	for _, l := range losses {
		rs, vs := stllearn.Curve(l, lo, hi, n)
		out.Margins = rs
		out.Curves[l.Name()] = vs
	}
	return out
}

// Render prints the loss curves as aligned columns.
func (l LossCurvesResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 3 — Loss functions over margin r\n")
	names := make([]string, 0, len(l.Curves))
	for n := range l.Curves {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "  %8s", "r")
	for _, n := range names {
		fmt.Fprintf(&b, " %10s", n)
	}
	b.WriteString("\n")
	for i, r := range l.Margins {
		fmt.Fprintf(&b, "  %8.2f", r)
		for _, n := range names {
			fmt.Fprintf(&b, " %10.4f", l.Curves[n][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderEvals prints a Table V / Table VI style block.
func RenderEvals(title string, evals []Eval) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-10s %22s %22s %14s\n", "", "sample level (δ window)", "simulation level", "timing")
	fmt.Fprintf(&b, "  %-10s %5s %5s %5s %5s  %5s %5s %5s %5s  %9s\n",
		"monitor", "FPR", "FNR", "ACC", "F1", "FPR", "FNR", "ACC", "F1", "step")
	for _, e := range evals {
		fmt.Fprintf(&b, "  %-10s %5.2f %5.2f %5.2f %5.2f  %5.2f %5.2f %5.2f %5.2f  %9s\n",
			e.Monitor,
			e.Sample.FPR(), e.Sample.FNR(), e.Sample.Accuracy(), e.Sample.F1(),
			e.Simulation.FPR(), e.Simulation.FNR(), e.Simulation.Accuracy(), e.Simulation.F1(),
			e.StepTime)
	}
	return b.String()
}

// RenderRuleAttribution prints, for each margin-carrying monitor, the
// Table I rules its alarms attribute to (the verdicts' arg-min rules)
// and the mean margins on both sides of the boundary. Monitors without
// rule attribution (ML baselines, guideline, MPC) are skipped.
func RenderRuleAttribution(evals []Eval) string {
	var b strings.Builder
	b.WriteString("Rule attribution — alarms by arg-min Table I rule (streaming verdicts)\n")
	for _, e := range evals {
		if e.MarginSamples == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-10s mean margin: alarmed %7.3f, safe %7.3f (%d cycles)\n",
			e.Monitor, e.MeanAlarmMargin, e.MeanSafeMargin, e.MarginSamples)
		ids := make([]int, 0, len(e.RuleAttribution))
		total := 0
		for id, n := range e.RuleAttribution {
			ids = append(ids, id)
			total += n
		}
		sort.Ints(ids)
		for _, id := range ids {
			n := e.RuleAttribution[id]
			frac := float64(n) / float64(total)
			fmt.Fprintf(&b, "    rule %-3d %6d alarms %5.1f%% %s\n", id, n, 100*frac, bar(frac, 30))
		}
	}
	return b.String()
}

// RenderReaction prints the Fig. 9 comparison.
func RenderReaction(evals []Eval) string {
	var b strings.Builder
	b.WriteString("Fig 9 — Reaction time (minutes before hazard; positive = early)\n")
	for _, e := range evals {
		fmt.Fprintf(&b, "  %-10s mean %7.1f  std %7.1f  early-detection %5.1f%%\n",
			e.Monitor, e.Reaction.MeanMin, e.Reaction.StdMin, 100*e.Reaction.EarlyRate)
	}
	return b.String()
}

// RenderMitigation prints Table VII.
func RenderMitigation(results []MitigationResult) string {
	var b strings.Builder
	b.WriteString("Table VII — Mitigation with Algorithm 1\n")
	fmt.Fprintf(&b, "  %-10s %14s %12s %10s\n", "monitor", "recovery rate", "new hazards", "avg risk")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-10s %13.1f%% %12d %10.3f\n",
			r.Monitor, 100*r.Outcome.RecoveryRate, r.Outcome.NewHazards, r.Outcome.AverageRisk)
	}
	return b.String()
}

// PatientVsPopulation is one Table VIII row pair.
type PatientVsPopulation struct {
	Patient  string
	Specific Eval
	Pop      Eval
}

// TableVIII compares patient-specific and population thresholds on each
// patient's own test traces.
func (s *Suite) TableVIII(test []*trace.Trace, patients []string) ([]PatientVsPopulation, error) {
	groups := ByPatient(test)
	if len(patients) == 0 {
		for id := range groups {
			patients = append(patients, id)
		}
		sort.Strings(patients)
	}
	var out []PatientVsPopulation
	for _, id := range patients {
		traces := groups[id]
		if len(traces) == 0 {
			continue
		}
		spec, err := s.EvaluateMonitor("CAWT", traces)
		if err != nil {
			return nil, err
		}
		pop, err := s.EvaluateMonitor("CAWT-pop", traces)
		if err != nil {
			return nil, err
		}
		out = append(out, PatientVsPopulation{Patient: id, Specific: spec, Pop: pop})
	}
	return out, nil
}

// RenderTableVIII prints the comparison.
func RenderTableVIII(rows []PatientVsPopulation) string {
	var b strings.Builder
	b.WriteString("Table VIII — Patient-specific vs population thresholds (sample level)\n")
	fmt.Fprintf(&b, "  %-14s %-12s %6s %6s %6s %8s %6s\n",
		"patient", "threshold", "FPR", "FNR", "ACC", "F1", "EDR")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %-12s %6.3f %6.3f %6.3f %8.3f %5.1f%%\n",
			r.Patient, "specific",
			r.Specific.Sample.FPR(), r.Specific.Sample.FNR(),
			r.Specific.Sample.Accuracy(), r.Specific.Sample.F1(),
			100*r.Specific.Reaction.EarlyRate)
		fmt.Fprintf(&b, "  %-14s %-12s %6.3f %6.3f %6.3f %8.3f %5.1f%%\n",
			"", "population",
			r.Pop.Sample.FPR(), r.Pop.Sample.FNR(),
			r.Pop.Sample.Accuracy(), r.Pop.Sample.F1(),
			100*r.Pop.Reaction.EarlyRate)
	}
	return b.String()
}

// ScenarioSubset thins the full campaign deterministically to 1-in-k
// scenarios, for quick runs and benchmarks.
func ScenarioSubset(k int) []fault.Scenario {
	all := fault.Campaign(nil)
	if k <= 1 {
		return all
	}
	var out []fault.Scenario
	for i := 0; i < len(all); i += k {
		out = append(out, all[i])
	}
	return out
}

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n)
}
