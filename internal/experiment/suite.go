package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/ml"
	"repro/internal/monitor"
	"repro/internal/scs"
	"repro/internal/stllearn"
	"repro/internal/trace"
)

// SuiteConfig tunes monitor construction and training.
type SuiteConfig struct {
	Seed int64
	// Loss selects the STL threshold-learning loss (default TMEE).
	Loss stllearn.Loss
	// MaxMLSamples subsamples point-in-time ML training data; 0 selects
	// 20000. The paper trains on the full 1.3M-sample campaign with
	// TensorFlow; the pure-Go reimplementation trains on a deterministic
	// subsample to keep the suite runnable in minutes (DESIGN.md).
	MaxMLSamples int
	// MaxLSTMWindows subsamples LSTM windows; 0 selects 4000.
	MaxLSTMWindows int
	// MLPEpochs / LSTMEpochs bound training (defaults 15 / 8).
	MLPEpochs  int
	LSTMEpochs int
	// MLPHidden / LSTMUnits override the architectures. Defaults are
	// scaled-down versions of the paper's (256-128 and 128-64) sized for
	// the subsampled training sets; pass the paper's sizes for a full
	// run.
	MLPHidden []int
	LSTMUnits []int
	// LSTMWindow is the sliding window length (default 6 = 30 minutes).
	LSTMWindow int
	// MultiClass trains 3-class (none/H1/H2) ML monitors instead of
	// binary ones (the Section VI-1 ablation).
	MultiClass bool
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.Loss == nil {
		c.Loss = stllearn.TMEE{}
	}
	if c.MaxMLSamples == 0 {
		c.MaxMLSamples = 20000
	}
	if c.MaxLSTMWindows == 0 {
		c.MaxLSTMWindows = 4000
	}
	if c.MLPEpochs == 0 {
		c.MLPEpochs = 15
	}
	if c.LSTMEpochs == 0 {
		c.LSTMEpochs = 8
	}
	if len(c.MLPHidden) == 0 {
		c.MLPHidden = []int{64, 32}
	}
	if len(c.LSTMUnits) == 0 {
		c.LSTMUnits = []int{32, 16}
	}
	if c.LSTMWindow == 0 {
		c.LSTMWindow = 6
	}
	return c
}

// Suite holds every trained monitor for one platform, ready to be
// instantiated per patient.
type Suite struct {
	Platform Platform
	Config   SuiteConfig

	// CAWT per-patient thresholds and the population-level table.
	PatientThresholds map[string]scs.Thresholds
	PopThresholds     scs.Thresholds
	LearnReport       stllearn.Report

	// Guideline percentiles (per platform, from fault-free data).
	Lambda10, Lambda90 float64

	// Trained ML models (shared across patients, as in the paper).
	DT   *ml.Tree
	MLP  *ml.MLP
	LSTM *ml.LSTM

	basals map[string]float64 // patient ID -> basal (for MPC)
}

// BuildSuite trains every monitor from labeled training traces plus the
// platform's fault-free runs.
func BuildSuite(platform Platform, training, faultFree []*trace.Trace, cfg SuiteConfig) (*Suite, error) {
	cfg = cfg.withDefaults()
	s := &Suite{Platform: platform, Config: cfg, basals: make(map[string]float64)}

	// Patient basal rates (for the MPC monitor's steady-state init).
	for i := 0; i < platform.NumPatients; i++ {
		p, err := platform.NewPatient(i)
		if err != nil {
			return nil, err
		}
		s.basals[p.ID()] = p.Basal()
	}

	// CAWT thresholds: patient-specific and population-level.
	learnCfg := stllearn.Config{Loss: cfg.Loss}
	per, err := stllearn.LearnPerPatient(scs.TableI(), training, learnCfg)
	if err != nil {
		return nil, err
	}
	// Patients absent from the training set fall back to population.
	pop, report, err := stllearn.Learn(scs.TableI(), training, learnCfg)
	if err != nil {
		return nil, err
	}
	s.PatientThresholds = per
	s.PopThresholds = pop
	s.LearnReport = report

	// Guideline percentiles from fault-free behavior. The no-meal
	// steady-state traces concentrate near the control target, which
	// would make raw percentiles absurdly tight; clamp them to the
	// clinically sensible band the Table III rules assume (a patient's
	// daily BG distribution spans well beyond closed-loop steady state).
	l10, l90, err := monitor.PercentilesFromTraces(faultFree)
	if err != nil {
		return nil, err
	}
	if l10 > 90 {
		l10 = 90
	}
	if l10 < 75 {
		l10 = 75
	}
	if l90 < 160 {
		l90 = 160
	}
	if l90 > 185 {
		l90 = 185
	}
	s.Lambda10, s.Lambda90 = l10, l90

	// ML monitors.
	rng := rand.New(rand.NewSource(cfg.Seed))
	X, y := monitor.TrainingData(training, cfg.MultiClass)
	X, y = subsample(X, y, cfg.MaxMLSamples, rng)
	classes := 2
	if cfg.MultiClass {
		classes = 3
	}
	if s.DT, err = ml.FitTree(X, y, ml.TreeConfig{Classes: classes}); err != nil {
		return nil, fmt.Errorf("experiment: DT training: %w", err)
	}
	if s.MLP, err = ml.FitMLP(X, y, ml.MLPConfig{
		Hidden: cfg.MLPHidden, Classes: classes, Epochs: cfg.MLPEpochs,
	}, rng); err != nil {
		return nil, fmt.Errorf("experiment: MLP training: %w", err)
	}
	XSeq, ySeq := monitor.SequenceTrainingData(training, cfg.LSTMWindow, cfg.MultiClass)
	XSeq, ySeq = subsampleSeq(XSeq, ySeq, cfg.MaxLSTMWindows, rng)
	if s.LSTM, err = ml.FitLSTM(XSeq, ySeq, ml.LSTMConfig{
		Units: cfg.LSTMUnits, Classes: classes, Window: cfg.LSTMWindow,
		Epochs: cfg.LSTMEpochs,
	}, rng); err != nil {
		return nil, fmt.Errorf("experiment: LSTM training: %w", err)
	}
	return s, nil
}

// MonitorNames lists the suite's monitors in the paper's order.
var MonitorNames = []string{"Guideline", "MPC", "CAWOT", "CAWT", "DT", "MLP", "LSTM"}

// NewMonitor instantiates a fresh monitor for a patient. CAWT uses the
// patient-specific thresholds (population fallback); CAWT-pop forces the
// population table (Table VIII comparison).
func (s *Suite) NewMonitor(name, patientID string) (monitor.Monitor, error) {
	switch name {
	case "CAWT":
		th, ok := s.PatientThresholds[patientID]
		if !ok {
			th = s.PopThresholds
		}
		return monitor.NewCAWT(scs.TableI(), th, scs.Params{})
	case "CAWT-pop":
		return monitor.NewCAWT(scs.TableI(), s.PopThresholds, scs.Params{})
	case "CAWOT":
		return monitor.NewCAWOT(scs.TableI(), scs.Params{})
	case "Guideline":
		return monitor.NewGuideline(monitor.GuidelineConfig{
			Lambda10: s.Lambda10, Lambda90: s.Lambda90,
		})
	case "MPC":
		basal, ok := s.basals[patientID]
		if !ok || basal <= 0 {
			basal = 1.3
		}
		return monitor.NewMPC(monitor.MPCConfig{Basal: basal})
	case "DT":
		return monitor.NewMLMonitor("DT", s.DT)
	case "MLP":
		return monitor.NewMLMonitor("MLP", s.MLP)
	case "LSTM":
		return monitor.NewSequenceMonitor("LSTM", s.LSTM, s.Config.LSTMWindow)
	default:
		return nil, fmt.Errorf("experiment: unknown monitor %q", name)
	}
}

// NewBatchMonitor instantiates a batched-inference monitor for the ML
// baselines (DT, MLP, LSTM): one per fleet shard, sharing this suite's
// trained weights. Verdicts are bit-identical to the per-session
// monitors of NewMonitor.
func (s *Suite) NewBatchMonitor(name string) (monitor.BatchMonitor, error) {
	switch name {
	case "DT":
		return monitor.NewBatchML("DT", s.DT)
	case "MLP":
		return monitor.NewBatchML("MLP", s.MLP.NewBatch())
	case "LSTM":
		return monitor.NewBatchSequence("LSTM", s.LSTM.NewBatch(), s.Config.LSTMWindow)
	default:
		return nil, fmt.Errorf("experiment: no batched variant of monitor %q", name)
	}
}

func subsample(X [][]float64, y []int, limit int, rng *rand.Rand) ([][]float64, []int) {
	if len(X) <= limit {
		return X, y
	}
	idx := rng.Perm(len(X))[:limit]
	outX := make([][]float64, limit)
	outY := make([]int, limit)
	for i, j := range idx {
		outX[i] = X[j]
		outY[i] = y[j]
	}
	return outX, outY
}

func subsampleSeq(X [][][]float64, y []int, limit int, rng *rand.Rand) ([][][]float64, []int) {
	if len(X) <= limit {
		return X, y
	}
	idx := rng.Perm(len(X))[:limit]
	outX := make([][][]float64, limit)
	outY := make([]int, limit)
	for i, j := range idx {
		outX[i] = X[j]
		outY[i] = y[j]
	}
	return outX, outY
}
