package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestRoundTrip pins every primitive through an encode/decode cycle,
// including the IEEE-754 edge cases the Float64 bit encoding must
// preserve exactly.
func TestRoundTrip(t *testing.T) {
	negZero := math.Copysign(0, -1)
	nanPayload := math.Float64frombits(0x7ff8deadbeef0001)

	enc := NewEncoder()
	enc.Uvarint(0)
	enc.Uvarint(1<<63 + 17)
	enc.Varint(-1)
	enc.Varint(1 << 40)
	enc.Int(-123456)
	enc.Float64(negZero)
	enc.Float64(nanPayload)
	enc.Float64(math.Inf(-1))
	enc.Bool(true)
	enc.Bool(false)
	enc.String("")
	enc.String("héllo")
	enc.Bytes(nil)
	enc.Bytes([]byte{0, 255, 7})

	dec := NewDecoder(enc.Payload())
	if v := dec.Uvarint(); v != 0 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := dec.Uvarint(); v != 1<<63+17 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := dec.Varint(); v != -1 {
		t.Errorf("Varint = %d", v)
	}
	if v := dec.Varint(); v != 1<<40 {
		t.Errorf("Varint = %d", v)
	}
	if v := dec.Int(); v != -123456 {
		t.Errorf("Int = %d", v)
	}
	if v := dec.Float64(); math.Float64bits(v) != math.Float64bits(negZero) {
		t.Errorf("negative zero lost: %x", math.Float64bits(v))
	}
	if v := dec.Float64(); math.Float64bits(v) != math.Float64bits(nanPayload) {
		t.Errorf("NaN payload lost: %x", math.Float64bits(v))
	}
	if v := dec.Float64(); !math.IsInf(v, -1) {
		t.Errorf("-Inf lost: %v", v)
	}
	if v := dec.Bool(); !v {
		t.Error("Bool true lost")
	}
	if v := dec.Bool(); v {
		t.Error("Bool false lost")
	}
	if v := dec.String(); v != "" {
		t.Errorf("String = %q", v)
	}
	if v := dec.String(); v != "héllo" {
		t.Errorf("String = %q", v)
	}
	if v := dec.Bytes(); len(v) != 0 {
		t.Errorf("Bytes = %v", v)
	}
	if v := dec.Bytes(); !bytes.Equal(v, []byte{0, 255, 7}) {
		t.Errorf("Bytes = %v", v)
	}
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestDecoderStickyErrors drives each accessor into its failure mode
// and checks the first error sticks: later reads return zero values and
// report the original error.
func TestDecoderStickyErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		read func(*Decoder)
	}{
		{"truncated uvarint", []byte{0x80}, func(d *Decoder) { d.Uvarint() }},
		{"truncated varint", []byte{0xff}, func(d *Decoder) { d.Varint() }},
		{"truncated float", []byte{1, 2, 3}, func(d *Decoder) { d.Float64() }},
		{"truncated bool", nil, func(d *Decoder) { d.Bool() }},
		{"bad bool", []byte{7}, func(d *Decoder) { d.Bool() }},
		{"truncated bytes", []byte{200}, func(d *Decoder) { d.Bytes() }},
		{"negative count", []byte{0x01}, func(d *Decoder) { d.Count(1) }}, // zigzag(-1)
		{"implausible count", []byte{0xa0, 0x8d, 0x06}, func(d *Decoder) { d.Count(8) }},
		{"explicit fail", []byte{0}, func(d *Decoder) { d.Fail("capacity exceeded") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDecoder(tc.data)
			tc.read(d)
			if d.Err() == nil {
				t.Fatal("no error recorded")
			}
			first := d.Err()
			// Sticky: further reads do not disturb the error or panic.
			d.Uvarint()
			d.Float64()
			d.Bool()
			d.Bytes()
			if !errors.Is(d.Err(), first) && d.Err() != first {
				t.Errorf("error replaced: %v -> %v", first, d.Err())
			}
			if err := d.Finish(); err == nil {
				t.Error("Finish() = nil after decode error")
			}
		})
	}

	t.Run("trailing bytes", func(t *testing.T) {
		d := NewDecoder([]byte{1, 2})
		d.Bool()
		if err := d.Finish(); err == nil {
			t.Error("Finish() = nil with unread bytes")
		}
	})
}

// TestSealOpen pins the envelope: a sealed payload opens to the same
// bytes, and EVERY single-byte corruption of the envelope is rejected
// (the hash covers version and payload; the magic and the hash bytes
// are checked structurally).
func TestSealOpen(t *testing.T) {
	payload := []byte("the quick brown snapshot")
	sealed := Seal(payload)
	got, err := Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round-trip: %q", got)
	}
	if _, err := Open(Seal(nil)); err != nil {
		t.Fatalf("empty payload: %v", err)
	}

	for i := range sealed {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 0x5a
		if _, err := Open(bad); err == nil {
			t.Errorf("flip at byte %d opened without error", i)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Errorf("flip at byte %d: unexpected error class %v", i, err)
		}
	}
	for n := 0; n < len(sealed); n++ {
		if _, err := Open(sealed[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

// TestOpenVersionMismatch pins the loud cross-version failure: an
// envelope stamped with a future version is rejected with ErrVersion
// and an error naming both versions.
func TestOpenVersionMismatch(t *testing.T) {
	sealed := Seal([]byte("state"))
	sealed[4] = Version + 1 // version uvarint sits after the 4-byte magic
	Reseal(sealed)          // fix the hash so only the version differs
	_, err := Open(sealed)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

// TestEncodeDecodeEncodeIdentity is the canonical-encoding law at the
// codec level: decoding a payload field by field and re-encoding it
// reproduces the bytes exactly.
func TestEncodeDecodeEncodeIdentity(t *testing.T) {
	enc := NewEncoder()
	enc.Int(42)
	enc.Float64(3.14159)
	enc.String("lane")
	enc.Bool(true)
	enc.Bytes([]byte{9, 9, 9})
	first := append([]byte(nil), enc.Payload()...)

	dec := NewDecoder(first)
	re := NewEncoder()
	re.Int(dec.Int())
	re.Float64(dec.Float64())
	re.String(dec.String())
	re.Bool(dec.Bool())
	re.Bytes(dec.Bytes())
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, re.Payload()) {
		t.Fatal("encode(decode(encode(x))) != encode(x)")
	}
}

// FuzzOpen feeds arbitrary bytes to the envelope opener: it must never
// panic, and any input it accepts must re-seal to an envelope it
// accepts again with the same payload.
func FuzzOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add(Seal(nil))
	f.Add(Seal([]byte("abc")))
	long := Seal(bytes.Repeat([]byte{7}, 300))
	f.Add(long)
	trunc := append([]byte(nil), long[:len(long)-5]...)
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Open(data)
		if err != nil {
			return
		}
		again, err := Open(Seal(payload))
		if err != nil {
			t.Fatalf("re-seal of accepted payload rejected: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatal("re-sealed payload differs")
		}
	})
}

// FuzzDecoder drives every Decoder accessor over arbitrary payloads:
// no input may panic, and after any error the decoder must stay in its
// sticky-error state.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(3))
	enc := NewEncoder()
	enc.Int(5)
	enc.Float64(1.5)
	enc.String("ok")
	f.Add(enc.Payload(), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, order uint8) {
		d := NewDecoder(data)
		for i := 0; i < 16 && d.Err() == nil; i++ {
			switch (int(order) + i) % 7 {
			case 0:
				d.Uvarint()
			case 1:
				d.Varint()
			case 2:
				d.Float64()
			case 3:
				d.Bool()
			case 4:
				_ = d.String()
			case 5:
				d.Bytes()
			case 6:
				n := d.Count(8)
				for j := 0; j < n && d.Err() == nil; j++ {
					d.Float64()
				}
			}
		}
		if d.Err() != nil && d.Finish() == nil {
			t.Fatal("Finish() = nil while Err() is set")
		}
	})
}
