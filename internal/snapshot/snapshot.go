// Package snapshot implements the versioned binary codec that session
// checkpointing is built on: an append-only Encoder, a bounds-checked
// sticky-error Decoder, and a Seal/Open envelope carrying a magic
// number, a format version, and a SHA-256 state hash.
//
// The encoding is canonical: every component serializes its state in a
// fixed logical order (ring buffers oldest-first, deques front-to-back),
// so encode(decode(encode(x))) == encode(x) byte-for-byte, and the same
// logical state produces the same bytes whether it lived in a scalar
// engine or a batched lane. That property is what lets the fleet's
// golden differential tests compare snapshots across engines and pin
// the format with checked-in fixtures.
//
// Decoding never panics: every read is bounds-checked, lengths are
// validated against the remaining input, and the first error sticks so
// callers can check once per section. A failed Open or decode leaves
// the caller's state untouched — restore is all-or-nothing at the
// session level.
//
//fleetvet:deterministic
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Version is the current snapshot format version. Open rejects
// envelopes sealed with any other version; bump it on any change to
// the byte layout produced by the component serializers.
//
// v2: session snapshots carry the scenario program's canonical text
// (inline admissions), and fleetd tenant records carry program lists.
const Version = 2

// magic identifies a sealed snapshot envelope.
var magic = [4]byte{'A', 'P', 'S', 'S'}

// ErrCorrupt reports a structurally invalid snapshot: bad magic, a
// failed hash check, a truncated payload, or malformed varints.
var ErrCorrupt = errors.New("snapshot: corrupt data")

// ErrVersion reports a format-version mismatch between the envelope
// and this build's Version.
var ErrVersion = errors.New("snapshot: format version mismatch")

// Snapshotter is implemented by components that can serialize their
// live state into an Encoder and later reload it from a Decoder. The
// bytes written by SnapshotState must decode bit-exactly: after
// RestoreState, the component's future evolution is identical to the
// original's, and re-encoding yields the same bytes.
type Snapshotter interface {
	// SnapshotState appends the component's state to enc.
	SnapshotState(enc *Encoder)
	// RestoreState reloads state previously written by SnapshotState.
	// On error the component must be considered unusable (callers
	// discard it); partial state must never leak into a live run.
	RestoreState(dec *Decoder) error
}

// LaneSnapshotter is the per-lane equivalent of Snapshotter for
// struct-of-arrays batch engines. A lane's bytes are identical to the
// scalar engine's bytes for the same logical state, so sessions can be
// snapshotted from a batched lane and restored into a scalar engine or
// vice versa.
type LaneSnapshotter interface {
	// SnapshotLane appends lane's state to enc.
	SnapshotLane(lane int, enc *Encoder)
	// RestoreLane reloads one lane from bytes written by SnapshotLane
	// (or by the scalar SnapshotState of an equivalent component).
	RestoreLane(lane int, dec *Decoder) error
}

// Encoder accumulates a snapshot payload. The zero value is ready to
// use; all writes append.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a zigzag-encoded signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Float64 appends the IEEE-754 bits of v in little-endian order,
// preserving NaN payloads and signed zeros exactly.
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Len returns the number of bytes written so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Payload returns the accumulated bytes. The slice aliases the
// encoder's buffer; callers must not keep writing through the encoder
// while holding it unless they re-fetch it afterwards.
func (e *Encoder) Payload() []byte { return e.buf }

// Decoder reads a snapshot payload with sticky-error semantics: after
// the first failure every accessor returns the zero value and Err
// reports the original error. No accessor ever panics on malformed
// input.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder reads from data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

// fail records the first error.
func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}

// Fail lets component restores flag semantically invalid input (e.g. a
// count exceeding a fixed capacity) through the same sticky-error
// channel the primitive readers use.
func (d *Decoder) Fail(what string) { d.fail(what) }

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Count reads a non-negative element count and validates it against
// the remaining input assuming each element occupies at least minBytes
// bytes, so corrupt counts cannot drive huge allocations downstream.
func (d *Decoder) Count(minBytes int) int {
	n := d.Varint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n < 0 || n > int64(d.Remaining()/minBytes) {
		d.fail("implausible count")
		return 0
	}
	return int(n)
}

// Float64 reads the bits written by Encoder.Float64.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// Bool reads a 0/1 byte; any other value is an error.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail("truncated bool")
		return false
	}
	b := d.data[d.off]
	if b > 1 {
		d.fail("bad bool")
		return false
	}
	d.off++
	return b == 1
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.rawBytes()) }

// Bytes reads a length-prefixed byte slice. The result is a copy.
func (d *Decoder) Bytes() []byte {
	raw := d.rawBytes()
	if raw == nil {
		return nil
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// rawBytes reads a length-prefixed slice aliasing the input.
func (d *Decoder) rawBytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("truncated bytes")
		return nil
	}
	out := d.data[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// Finish reports the sticky error, or an error if unread bytes remain.
// Component restores call it at the end of their section scope only
// when they own the whole payload.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.Remaining())
	}
	return nil
}

// Seal wraps a payload in the snapshot envelope:
//
//	magic(4) | version uvarint | payload-len uvarint | payload | sha256(32)
//
// The hash covers the version and the payload, so any bit flip in
// either is caught by Open before a single byte reaches a component
// restore.
func Seal(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+48)
	out = append(out, magic[:]...)
	out = binary.AppendUvarint(out, Version)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(out[len(magic):])
	out = append(out, sum[:]...)
	return out
}

// Reseal recomputes the state hash of a sealed envelope in place and
// returns it. It exists for version-guard tests that forge an envelope
// with a foreign version byte: the hash must be valid so Open's failure
// is attributable to the version check alone. The input must be at
// least a minimal envelope.
func Reseal(data []byte) []byte {
	if len(data) < len(magic)+sha256.Size {
		return data
	}
	sum := sha256.Sum256(data[len(magic) : len(data)-sha256.Size])
	copy(data[len(data)-sha256.Size:], sum[:])
	return data
}

// Open verifies a sealed envelope and returns its payload. It fails
// loudly on a bad magic number, a version other than Version, a
// truncated payload, or a hash mismatch. The returned slice aliases
// data.
func Open(data []byte) ([]byte, error) {
	if len(data) < len(magic)+2+sha256.Size {
		return nil, fmt.Errorf("%w: envelope too short (%d bytes)", ErrCorrupt, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body := data[len(magic) : len(data)-sha256.Size]
	sum := sha256.Sum256(body)
	if sum != [sha256.Size]byte(data[len(data)-sha256.Size:]) {
		return nil, fmt.Errorf("%w: state hash mismatch", ErrCorrupt)
	}
	ver, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad version varint", ErrCorrupt)
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d", ErrVersion, ver, Version)
	}
	rest := body[n:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	rest = rest[n:]
	if uint64(len(rest)) != plen {
		return nil, fmt.Errorf("%w: payload length %d does not match envelope (%d)", ErrCorrupt, len(rest), plen)
	}
	return rest, nil
}
