package scs

import (
	"fmt"

	"repro/internal/stl"
)

// BatchStreamSet evaluates a Safety Context Specification across a
// whole shard of sessions in one push: the rules' antecedents compile
// into a single hash-consed stl.BatchStreamGroup whose per-node state
// is a [lanes]-wide vector, and the structurally fixed consequent folds
// inline per lane exactly as StreamSet does per session. One PushLanes
// per control cycle yields every live session's StreamVerdict —
// bit-identical to pushing each session through its own StreamSet (the
// batched differential tests enforce exact equality of margins, arg-min
// rules, hazards, and fired sets) — while dispatch, memo checks, and
// rule loops amortize across the shard. Lanes reset independently, so a
// fleet shard recycles a completed session's lane without disturbing
// its neighbors.
type BatchStreamSet struct {
	rules []Rule
	group *stl.BatchStreamGroup
	ante  []int
	width int

	// fold is the shared Eq. 1 verdict fold (see fold.go); ls/lr are its
	// reused per-rule antecedent scratch, gathered per lane.
	fold ruleFold
	ls   []bool
	lr   []float64

	// vals is the reused struct-of-arrays push matrix; sel maps each
	// group variable row to its State field. sats/robs cache each rule's
	// result vectors for the verdict fold.
	vals  []float64
	sel   []int
	sats  [][]bool
	robs  [][]float64
	fired [][]int // per active index k: rule IDs violated at the last push
	n     int
}

// NewBatchStreamSet compiles every rule body for batched evaluation
// across `width` session lanes at sampling period dtMin minutes (nil
// thresholds select the rules' CAWOT defaults). Rule validation matches
// NewStreamSet exactly.
func NewBatchStreamSet(rules []Rule, th Thresholds, p Params, dtMin float64, width int) (*BatchStreamSet, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("scs: stream set needs at least one rule")
	}
	if th == nil {
		th = Defaults(rules)
	}
	p = p.WithDefaults()
	group, err := stl.NewBatchStreamGroup(dtMin, width)
	if err != nil {
		return nil, fmt.Errorf("scs: %w", err)
	}
	bs := &BatchStreamSet{
		rules: rules,
		group: group,
		width: width,
		fold:  newRuleFold(rules),
		ls:    make([]bool, len(rules)),
		lr:    make([]float64, len(rules)),
		sats:  make([][]bool, len(rules)),
		robs:  make([][]float64, len(rules)),
		fired: make([][]int, width),
	}
	if bs.ante, err = compileAntecedents(rules, th, p, group.Add); err != nil {
		return nil, err
	}
	if bs.sel, err = fieldSelectors(group.Vars()); err != nil {
		return nil, err
	}
	bs.vals = make([]float64, len(bs.sel)*width)
	for k := range bs.fired {
		bs.fired[k] = make([]int, 0, len(rules))
	}
	return bs, nil
}

// Rules returns the compiled rule set.
func (bs *BatchStreamSet) Rules() []Rule { return bs.rules }

// Width returns the lane count.
func (bs *BatchStreamSet) Width() int { return bs.width }

// Len returns the number of batched pushes consumed.
func (bs *BatchStreamSet) Len() int { return bs.n }

// PushLanes feeds one control cycle's context state for each of the
// given lanes and writes the per-lane verdicts into out (len(out) must
// be at least len(lanes)). states[k] is the cycle state of session lane
// lanes[k]; lanes absent from the call do not advance. The verdict
// aggregation per lane is the exact fold of StreamSet.Push, so batched
// margins, rules, and hazards are bit-identical to per-session
// evaluation.
func (bs *BatchStreamSet) PushLanes(lanes []int, states []State, out []StreamVerdict) error {
	n := len(lanes)
	if n > bs.width {
		// Checked here because the value-matrix fill below slices bs.vals
		// by n before the lane-level validation in the group runs.
		return fmt.Errorf("scs: %d lanes exceed width %d", n, bs.width)
	}
	if len(states) != n {
		return fmt.Errorf("scs: %d states for %d lanes", len(states), n)
	}
	if len(out) < n {
		return fmt.Errorf("scs: verdict buffer holds %d, need %d", len(out), n)
	}
	for vi, sel := range bs.sel {
		row := bs.vals[vi*n : (vi+1)*n]
		switch sel {
		case selBG:
			for k := range states {
				row[k] = states[k].BG
			}
		case selBGPrime:
			for k := range states {
				row[k] = states[k].BGPrime
			}
		case selIOB:
			for k := range states {
				row[k] = states[k].IOB
			}
		case selIOBPrime:
			for k := range states {
				row[k] = states[k].IOBPrime
			}
		case selAction:
			for k := range states {
				row[k] = float64(states[k].Action)
			}
		}
	}
	if err := bs.group.PushLanes(lanes, bs.vals[:len(bs.sel)*n]); err != nil {
		return fmt.Errorf("scs: %w", err)
	}
	for i := range bs.rules {
		bs.sats[i] = bs.group.Sats(bs.ante[i])
		bs.robs[i] = bs.group.Robs(bs.ante[i])
	}
	for k := 0; k < n; k++ {
		for i := range bs.rules {
			bs.ls[i], bs.lr[i] = bs.sats[i][k], bs.robs[i][k]
		}
		out[k], bs.fired[k] = bs.fold.fold(float64(states[k].Action), bs.ls, bs.lr, bs.fired[k][:0])
	}
	bs.n++
	return nil
}

// Fired returns the rule IDs violated at active index k of the last
// push (k indexes the lanes slice that push was called with), in rule
// order. The slice is reused by the next push; callers that retain it
// must copy.
func (bs *BatchStreamSet) Fired(k int) []int { return bs.fired[k] }

// StateSamples returns the total buffered per-sample entries across the
// rule set's unique operator nodes, summed over all lanes (hash-consed
// subformulas count once).
func (bs *BatchStreamSet) StateSamples() int { return bs.group.StateSamples() }

// ResetLane clears one lane's rule-stream state — a session restarting
// in place — leaving other lanes untouched.
func (bs *BatchStreamSet) ResetLane(lane int) { bs.group.ResetLane(lane) }

// Reset clears all rule-stream state in every lane.
func (bs *BatchStreamSet) Reset() {
	bs.group.Reset()
	bs.n = 0
	for k := range bs.fired {
		bs.fired[k] = bs.fired[k][:0]
	}
}
