package scs

import (
	"fmt"
	"math"

	"repro/internal/stl"
	"repro/internal/trace"
)

// compileAntecedents validates a rule set and compiles each rule's
// antecedent through add (StreamGroup.Add or BatchStreamGroup.Add),
// returning each antecedent's group index. Shared by NewStreamSet and
// NewBatchStreamSet so the two constructors cannot drift.
func compileAntecedents(rules []Rule, th Thresholds, p Params, add func(stl.Formula) (int, error)) ([]int, error) {
	ante := make([]int, len(rules))
	for i, r := range rules {
		beta, ok := th[r.ID]
		if !ok {
			return nil, fmt.Errorf("scs: missing threshold for rule %d", r.ID)
		}
		if r.Hazard == trace.HazardNone {
			// Every Safety Context Specification rule predicts a hazard
			// class; a zero Hazard is a construction bug, and admitting it
			// would fabricate an H2 attribution on violation.
			return nil, fmt.Errorf("scs: rule %d has no hazard class", r.ID)
		}
		var err error
		if ante[i], err = add(r.Antecedent(p, beta)); err != nil {
			return nil, fmt.Errorf("scs: rule %d antecedent: %w", r.ID, err)
		}
	}
	return ante, nil
}

// fieldSelectors maps a compiled group's variable table to State field
// selectors, so pushes bind values without maps. Shared by both stream
// set constructors: a new rule-vocabulary variable must be wired here
// exactly once.
func fieldSelectors(vars []string) ([]int, error) {
	sel := make([]int, 0, len(vars))
	for _, name := range vars {
		switch name {
		case "BG":
			sel = append(sel, selBG)
		case "BG'":
			sel = append(sel, selBGPrime)
		case "IOB":
			sel = append(sel, selIOB)
		case "IOB'":
			sel = append(sel, selIOBPrime)
		case "u":
			sel = append(sel, selAction)
		default:
			return nil, fmt.Errorf("scs: rule set reads unknown variable %q", name)
		}
	}
	return sel, nil
}

// ruleFold is the Eq. 1 verdict fold over one session's per-rule
// antecedent results: the consequent specialization (forbidden vs
// required action), the minimum body robustness with arg-min rule, the
// fired set, the worst-violation signed margin, and the H1/H2 hazard
// attribution. It is the single implementation behind both
// StreamSet.Push and BatchStreamSet.PushLanes, so the per-session and
// shard-batched paths agree by construction — the differential tests
// then only have to prove the antecedent evaluation equal.
type ruleFold struct {
	rules    []Rule
	action   []float64
	required []bool
	isH1     []bool
}

func newRuleFold(rules []Rule) ruleFold {
	f := ruleFold{
		rules:    rules,
		action:   make([]float64, len(rules)),
		required: make([]bool, len(rules)),
		isH1:     make([]bool, len(rules)),
	}
	for i, r := range rules {
		f.action[i] = float64(r.Action)
		f.required[i] = r.Required
		f.isH1[i] = r.Hazard == trace.HazardH1
	}
	return f
}

// fold computes one session's verdict: u is the issued action as a
// float, ls/lr the per-rule antecedent satisfaction and robustness
// (indexed like rules), and fired an emptied scratch slice that violated
// rule IDs are appended to in rule order and returned.
func (f *ruleFold) fold(u float64, ls []bool, lr []float64, fired []int) (StreamVerdict, []int) {
	v := StreamVerdict{Sat: true, MinRobust: math.Inf(1)}
	worst := math.Inf(1) // violation depth of the worst violated rule
	anyH1 := false
	for i := range f.rules {
		// Consequent inline: rob(u == a) = -|u - a|, negated for the
		// forbidden-action form ¬(u == a). Identical to compiling
		// Rule.Consequent, minus the dispatch.
		rs, rr := u == f.action[i], -math.Abs(u-f.action[i])
		if !f.required[i] {
			rs, rr = !rs, -rr
		}
		rob := rr // Eq. 1 body robustness: max(-lr, rr), finite operands
		if -lr[i] > rob {
			rob = -lr[i]
		}
		if rob < v.MinRobust {
			v.MinRobust = rob
			v.WorstRule = f.rules[i].ID
		}
		if !ls[i] || rs {
			continue // body satisfied
		}
		v.Sat = false
		fired = append(fired, f.rules[i].ID)
		if f.isH1[i] {
			anyH1 = true
		}
		if m := -lr[i]; m < worst {
			worst = m
			v.Rule = f.rules[i].ID
		}
	}
	if v.Sat {
		v.Margin, v.Rule = v.MinRobust, v.WorstRule
	} else {
		v.Margin = worst
		v.Hazard = trace.HazardH2
		if anyH1 {
			v.Hazard = trace.HazardH1
		}
	}
	return v, fired
}
