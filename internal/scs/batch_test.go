package scs

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// randBoundaryState draws a context state concentrated around the Table I
// decision boundaries (BGT, derivative tolerance bands, IOB thresholds)
// so the differential comparison exercises ties and near-boundary
// arithmetic, not just deep-interior points.
func randBoundaryState(rng *rand.Rand) State {
	s := State{
		BG:       40 + 300*rng.Float64(),
		BGPrime:  -6 + 12*rng.Float64(),
		IOB:      -3 + 12*rng.Float64(),
		IOBPrime: -0.05 + 0.1*rng.Float64(),
		Action:   trace.Action(1 + rng.Intn(4)),
	}
	switch rng.Intn(4) {
	case 0:
		s.BG = DefaultBGT + rng.NormFloat64() // hug the BGT boundary
	case 1:
		s.BGPrime = rng.NormFloat64() * DefaultBGDerivEps
		s.IOBPrime = rng.NormFloat64() * DefaultIOBDerivEps
	}
	return s
}

// randThresholds perturbs the default β table within each rule's
// learnable bounds.
func randThresholds(rng *rand.Rand, rules []Rule) Thresholds {
	th := make(Thresholds, len(rules))
	for _, r := range rules {
		th[r.ID] = r.Lo + (r.Hi-r.Lo)*rng.Float64()
	}
	return th
}

// TestBatchStreamSetMatchesPerSession is the batched-telemetry
// correctness contract: one BatchStreamSet pushed across many lanes —
// randomized active subsets, staggered lane resets, randomized
// thresholds — must produce StreamVerdicts (margin, arg-min rule,
// hazard, satisfaction) and fired-rule sets exactly equal to one
// per-session StreamSet per lane.
func TestBatchStreamSetMatchesPerSession(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	rules := TableI()
	for trial := 0; trial < 40; trial++ {
		var th Thresholds
		if trial%2 == 1 {
			th = randThresholds(rng, rules)
		}
		width := 1 + rng.Intn(8)
		batch, err := NewBatchStreamSet(rules, th, Params{}, 5, width)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*StreamSet, width)
		for lane := range refs {
			if refs[lane], err = NewStreamSet(rules, th, Params{}, 5); err != nil {
				t.Fatal(err)
			}
		}

		lanes := make([]int, 0, width)
		states := make([]State, 0, width)
		out := make([]StreamVerdict, width)
		violations := 0
		for step := 0; step < 60; step++ {
			if rng.Intn(10) == 0 {
				lane := rng.Intn(width)
				batch.ResetLane(lane)
				refs[lane].Reset()
			}
			lanes, states = lanes[:0], states[:0]
			for lane := 0; lane < width; lane++ {
				if rng.Intn(4) > 0 {
					lanes = append(lanes, lane)
					states = append(states, randBoundaryState(rng))
				}
			}
			if len(lanes) == 0 {
				lanes = append(lanes, rng.Intn(width))
				states = append(states, randBoundaryState(rng))
			}
			if err := batch.PushLanes(lanes, states, out); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			for k, lane := range lanes {
				want, err := refs[lane].Push(states[k])
				if err != nil {
					t.Fatalf("trial %d step %d lane %d: %v", trial, step, lane, err)
				}
				if out[k] != want {
					t.Fatalf("trial %d step %d lane %d: batched %+v, per-session %+v",
						trial, step, lane, out[k], want)
				}
				gotFired, wantFired := batch.Fired(k), refs[lane].Fired()
				if len(gotFired) != len(wantFired) {
					t.Fatalf("trial %d step %d lane %d: fired %v vs %v",
						trial, step, lane, gotFired, wantFired)
				}
				for i := range gotFired {
					if gotFired[i] != wantFired[i] {
						t.Fatalf("trial %d step %d lane %d: fired %v vs %v",
							trial, step, lane, gotFired, wantFired)
					}
				}
				if !want.Sat {
					violations++
				}
			}
		}
		if violations == 0 {
			t.Fatalf("trial %d: no violations across randomized states — comparison is vacuous", trial)
		}
	}
}

// TestBatchStreamSetValidation covers the construction and push error
// paths.
func TestBatchStreamSetValidation(t *testing.T) {
	rules := TableI()
	if _, err := NewBatchStreamSet(nil, nil, Params{}, 5, 4); err == nil {
		t.Error("empty rule set should be rejected")
	}
	if _, err := NewBatchStreamSet(rules, nil, Params{}, 5, 0); err == nil {
		t.Error("zero width should be rejected")
	}
	if _, err := NewBatchStreamSet(rules, Thresholds{1: 0.5}, Params{}, 5, 4); err == nil {
		t.Error("incomplete threshold table should be rejected")
	}
	bad := append([]Rule{}, rules...)
	bad[0].Hazard = trace.HazardNone
	if _, err := NewBatchStreamSet(bad, nil, Params{}, 5, 4); err == nil {
		t.Error("hazardless rule should be rejected")
	}

	bs, err := NewBatchStreamSet(rules, nil, Params{}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]StreamVerdict, 2)
	if err := bs.PushLanes([]int{0}, nil, out); err == nil {
		t.Error("state/lane length mismatch should be rejected")
	}
	if err := bs.PushLanes([]int{0, 1}, make([]State, 2), out[:1]); err == nil {
		t.Error("short verdict buffer should be rejected")
	}
	if err := bs.PushLanes([]int{5}, make([]State, 1), out); err == nil {
		t.Error("out-of-range lane should be rejected")
	}
	if err := bs.PushLanes([]int{0, 1, 0}, make([]State, 3), make([]StreamVerdict, 3)); err == nil {
		t.Error("more lanes than width should be rejected, not panic")
	}
}
