package scs

import (
	"strings"
	"testing"

	"repro/internal/stl"
	"repro/internal/trace"
)

func TestTableIStructure(t *testing.T) {
	rules := TableI()
	if len(rules) != 12 {
		t.Fatalf("Table I has %d rules, want 12", len(rules))
	}
	seen := make(map[int]bool)
	var h1, h2 int
	for _, r := range rules {
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %d", r.ID)
		}
		seen[r.ID] = true
		switch r.Hazard {
		case trace.HazardH1:
			h1++
		case trace.HazardH2:
			h2++
		default:
			t.Errorf("rule %d has no hazard", r.ID)
		}
		if r.Lo >= r.Hi {
			t.Errorf("rule %d has empty bound interval [%v,%v]", r.ID, r.Lo, r.Hi)
		}
		if r.Default < r.Lo || r.Default > r.Hi {
			t.Errorf("rule %d default %v outside bounds", r.ID, r.Default)
		}
	}
	// Table I: rules 6,7,8,10,12 target H1; the other seven target H2.
	if h1 != 5 || h2 != 7 {
		t.Errorf("hazard split H1=%d H2=%d, want 5/7", h1, h2)
	}
	// Only rule 10 is a required-action rule and learns a BG bound.
	for _, r := range rules {
		if r.Required != (r.ID == 10) {
			t.Errorf("rule %d Required=%v", r.ID, r.Required)
		}
		if (r.LearnVar == "BG") != (r.ID == 10) {
			t.Errorf("rule %d LearnVar=%s", r.ID, r.LearnVar)
		}
	}
}

func TestTrendMatching(t *testing.T) {
	tests := []struct {
		trend Trend
		d     float64
		want  bool
	}{
		{TrendAny, -99, true},
		{TrendUp, 1, true},
		{TrendUp, 0.05, false}, // inside eps band
		{TrendDown, -1, true},
		{TrendDown, -0.05, false},
		{TrendFlat, 0.05, true},
		{TrendFlat, 1, false},
		{TrendUpOrFlat, -0.05, true},
		{TrendUpOrFlat, -1, false},
		{TrendDownOrFlat, 0.05, true},
		{TrendDownOrFlat, 1, false},
	}
	for _, tt := range tests {
		if got := tt.trend.matches(tt.d, 0.1); got != tt.want {
			t.Errorf("trend %d matches(%v) = %v, want %v", tt.trend, tt.d, got, tt.want)
		}
	}
}

func TestRule1Violation(t *testing.T) {
	rules := TableI()
	r1 := rules[0]
	p := Params{}
	beta := 2.5
	// Hyper, rising, IOB falling and low, decrease issued: violation.
	s := State{BG: 180, BGPrime: 1.5, IOB: 1.0, IOBPrime: -0.01, Action: trace.ActionDecrease}
	if !r1.Violated(s, p, beta) {
		t.Error("rule 1 should fire")
	}
	variants := []struct {
		name   string
		mutate func(State) State
	}{
		{"BG below target", func(s State) State { s.BG = 100; return s }},
		{"BG falling", func(s State) State { s.BGPrime = -1; return s }},
		{"IOB rising", func(s State) State { s.IOBPrime = 0.01; return s }},
		{"IOB above beta", func(s State) State { s.IOB = 5; return s }},
		{"different action", func(s State) State { s.Action = trace.ActionIncrease; return s }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			if r1.Violated(v.mutate(s), p, beta) {
				t.Error("rule 1 should not fire")
			}
		})
	}
}

func TestRule10RequiredAction(t *testing.T) {
	var r10 Rule
	for _, r := range TableI() {
		if r.ID == 10 {
			r10 = r
		}
	}
	p := Params{}
	beta := 70.0
	low := State{BG: 60, BGPrime: -1, IOB: 1, Action: trace.ActionKeep}
	if !r10.Violated(low, p, beta) {
		t.Error("keeping insulin below β21 must violate rule 10")
	}
	stopped := low
	stopped.Action = trace.ActionStop
	if r10.Violated(stopped, p, beta) {
		t.Error("stopping insulin below β21 satisfies rule 10")
	}
	high := low
	high.BG = 90
	if r10.Violated(high, p, beta) {
		t.Error("rule 10 must not fire above β21")
	}
}

func TestViolatedMatchesSTL(t *testing.T) {
	// The fast-path Violated() and the STL rendering must agree on a
	// grid of states for every rule.
	rules := TableI()
	p := Params{}.WithDefaults()
	bgs := []float64{60, 100, 130, 200}
	dbgs := []float64{-2, 0, 2}
	iobs := []float64{-1, 0.2, 3}
	diobs := []float64{-0.01, 0, 0.01}
	actions := []trace.Action{trace.ActionDecrease, trace.ActionIncrease, trace.ActionStop, trace.ActionKeep}
	for _, r := range rules {
		beta := r.Default
		f := r.STL(p, beta)
		for _, bg := range bgs {
			for _, dbg := range dbgs {
				for _, iob := range iobs {
					for _, diob := range diobs {
						for _, a := range actions {
							s := State{BG: bg, BGPrime: dbg, IOB: iob, IOBPrime: diob, Action: a}
							tr, err := stl.NewTrace(5)
							if err != nil {
								t.Fatal(err)
							}
							tr.Append(map[string]float64{
								"BG": bg, "BG'": dbg, "IOB": iob, "IOB'": diob, "u": float64(a),
							})
							sat, err := f.Sat(tr, 0)
							if err != nil {
								t.Fatalf("rule %d STL eval: %v", r.ID, err)
							}
							if sat == r.Violated(s, p, beta) {
								t.Fatalf("rule %d: STL sat=%v but Violated=%v at %+v",
									r.ID, sat, r.Violated(s, p, beta), s)
							}
						}
					}
				}
			}
		}
	}
}

func TestSTLRendersParseable(t *testing.T) {
	p := Params{}.WithDefaults()
	for _, r := range TableI() {
		f := r.GlobalSTL(p, r.Default)
		if _, err := stl.Parse(f.String()); err != nil {
			t.Errorf("rule %d STL %q does not re-parse: %v", r.ID, f.String(), err)
		}
	}
}

func TestDefaults(t *testing.T) {
	rules := TableI()
	th := Defaults(rules)
	if len(th) != len(rules) {
		t.Fatalf("got %d thresholds", len(th))
	}
	if th[10] != 70 {
		t.Errorf("rule 10 default %v, want 70", th[10])
	}
}

func TestStateFromSample(t *testing.T) {
	s := trace.Sample{CGM: 150, BG: 155, BGPrime: 1, IOB: 2, IOBPrime: -0.1, Action: trace.ActionKeep}
	st := StateFromSample(&s)
	if st.BG != 150 {
		t.Errorf("monitor must observe CGM (150), got %v", st.BG)
	}
	if st.IOB != 2 || st.Action != trace.ActionKeep {
		t.Errorf("state %+v", st)
	}
}

func TestRuleString(t *testing.T) {
	r := TableI()[0]
	s := r.String()
	if !strings.Contains(s, "rule1") || !strings.Contains(s, "u1") {
		t.Errorf("String() = %q", s)
	}
}

func TestLearnValue(t *testing.T) {
	rules := TableI()
	s := State{BG: 95, IOB: 3.5}
	for _, r := range rules {
		v := r.LearnValue(s)
		if r.LearnVar == "BG" && v != 95 {
			t.Errorf("rule %d LearnValue = %v, want 95", r.ID, v)
		}
		if r.LearnVar == "IOB" && v != 3.5 {
			t.Errorf("rule %d LearnValue = %v, want 3.5", r.ID, v)
		}
	}
}
