package scs

import (
	"strings"
	"testing"

	"repro/internal/stl"
	"repro/internal/trace"
)

func TestDefaultHMSValidates(t *testing.T) {
	h := DefaultHMS()
	if err := h.Validate(); err != nil {
		t.Fatalf("DefaultHMS invalid: %v", err)
	}
	if len(h.Rules) < 4 {
		t.Errorf("only %d HMS rules", len(h.Rules))
	}
}

func TestHMSValidateCatchesErrors(t *testing.T) {
	tests := []struct {
		name string
		h    HMS
	}{
		{"duplicate id", HMS{Rules: []MitigationRule{
			{ID: 1, Hazard: trace.HazardH1, DeadlineMin: 10},
			{ID: 1, Hazard: trace.HazardH2, DeadlineMin: 10},
		}}},
		{"no hazard", HMS{Rules: []MitigationRule{{ID: 1, DeadlineMin: 10}}}},
		{"negative factor", HMS{Rules: []MitigationRule{
			{ID: 1, Hazard: trace.HazardH1, RateFactor: -1, DeadlineMin: 10},
		}}},
		{"no deadline", HMS{Rules: []MitigationRule{{ID: 1, Hazard: trace.HazardH1}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.h.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestHMSSelectH1CutsInsulin(t *testing.T) {
	h := DefaultHMS()
	// Falling hypoglycemia: rule 1 (stop).
	rate, rule, ok := h.Select(trace.HazardH1, State{BG: 75, BGPrime: -1.5, IOB: 3}, 1.3)
	if !ok {
		t.Fatal("H1 context should match")
	}
	if rate != 0 {
		t.Errorf("H1 corrective rate %v, want 0", rate)
	}
	if rule.ID != 1 {
		t.Errorf("selected rule %d, want 1 (most specific)", rule.ID)
	}
}

func TestHMSSelectH2ScalesWithContext(t *testing.T) {
	h := DefaultHMS()
	basal := 1.0
	// Aggressively rising hyperglycemia with falling IOB: full ceiling.
	rateHot, ruleHot, ok := h.Select(trace.HazardH2, State{BG: 250, BGPrime: 2, IOBPrime: -0.01}, basal)
	if !ok {
		t.Fatal("hot H2 context should match")
	}
	// Stagnant hyperglycemia: gentler boost.
	rateMild, ruleMild, ok := h.Select(trace.HazardH2, State{BG: 200, BGPrime: -1, IOBPrime: 0.01}, basal)
	if !ok {
		t.Fatal("mild H2 context should match")
	}
	if rateHot <= rateMild {
		t.Errorf("hot correction %v should exceed mild %v", rateHot, rateMild)
	}
	if ruleHot.ID == ruleMild.ID {
		t.Error("different contexts should select different rules")
	}
}

func TestHMSSelectFallbackRule(t *testing.T) {
	h := DefaultHMS()
	// H2 prediction while BG still below BGT (early prediction): the
	// BGAny fallback rule must catch it.
	rate, rule, ok := h.Select(trace.HazardH2, State{BG: 110, BGPrime: 0.5}, 2.0)
	if !ok {
		t.Fatal("fallback rule should match")
	}
	if rule.ID != 5 {
		t.Errorf("selected rule %d, want fallback 5", rule.ID)
	}
	if rate != 3.0 {
		t.Errorf("fallback rate %v, want 1.5x basal", rate)
	}
}

func TestHMSSelectNoHazardClass(t *testing.T) {
	h := HMS{Rules: []MitigationRule{
		{ID: 1, Hazard: trace.HazardH1, SafeAction: trace.ActionStop, DeadlineMin: 30},
	}}
	if _, _, ok := h.Select(trace.HazardH2, State{BG: 300}, 1); ok {
		t.Error("H2 should not match an H1-only spec")
	}
}

func TestMitigationRuleSTLRendersEq2(t *testing.T) {
	r := DefaultHMS().Rules[2] // H2 rising rule
	f := r.STL(Params{})
	src := f.String()
	// Must contain the Eq. 2 structure: G( (F[0,ts] u) S context ).
	if !strings.Contains(src, "S") || !strings.Contains(src, "F[0,60]") {
		t.Errorf("STL %q missing Since/Eventually structure", src)
	}
	if _, err := stl.Parse(src); err != nil {
		t.Errorf("HMS STL does not re-parse: %v", err)
	}
}

func TestMitigationRuleSTLSemantics(t *testing.T) {
	// Rule: in context (BG > BGT), action u2 must occur within 10 min.
	r := MitigationRule{
		ID: 1, Hazard: trace.HazardH2,
		BGSide: BGAbove, SafeAction: trace.ActionIncrease, DeadlineMin: 10,
	}
	f := r.STL(Params{})
	tr, err := stl.NewTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	// Context holds at samples 1-2 then exits. While the context still
	// holds, Since is satisfied by taking the witness at "now", so the
	// discriminating evaluation point is sample 3, after the exit: every
	// sample since the last context occurrence must promise the
	// corrective action within the deadline.
	_ = tr.Set("BG", []float64{100, 150, 150, 100})
	_ = tr.Set("BG'", []float64{0, 0, 0, 0})
	_ = tr.Set("IOB'", []float64{0, 0, 0, 0})
	_ = tr.Set("u", []float64{4, 4, 2, 2}) // corrective u2 issued in time
	sat, err := f.Sat(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Error("corrective action within deadline should satisfy Eq. 2")
	}
	// Without the corrective action: violated.
	_ = tr.Set("u", []float64{4, 4, 4, 4})
	sat, err = f.Sat(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("missing corrective action should violate Eq. 2")
	}
}

func TestHMSString(t *testing.T) {
	r := DefaultHMS().Rules[0]
	if !strings.Contains(r.String(), "hms1") {
		t.Errorf("String %q", r.String())
	}
}
