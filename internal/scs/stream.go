package scs

import (
	"fmt"
	"math"

	"repro/internal/stl"
)

// StreamVerdict is the per-cycle result of evaluating a rule set's STL
// bodies incrementally: whether every rule was satisfied at the newest
// sample, and the tightest (minimum) robustness margin across rules —
// the distance to the nearest unsafe-control-action boundary, the
// hazard-telemetry signal a serving fleet streams per session.
type StreamVerdict struct {
	// Sat is true when every rule body held at the pushed sample.
	Sat bool
	// MinRobust is the minimum robustness margin across all rules;
	// negative means at least one rule is violated, and its magnitude is
	// the margin of the worst rule.
	MinRobust float64
	// WorstRule is the ID of the rule with the minimum margin.
	WorstRule int
}

// StreamSet renders a Safety Context Specification's rule bodies (the
// formulas under G[t0,te] in Eq. 1) through the incremental streaming
// STL engine: one compiled stl.Stream per rule, fed the per-cycle
// context state. Pushes are O(1) amortized per rule and total state is
// bounded by the rules' window lengths, never by session length, so a
// StreamSet can stay attached to a continuous serving session forever.
type StreamSet struct {
	rules   []Rule
	streams []*stl.Stream
	params  Params
	n       int

	// sample is the reused variable binding for the rule vocabulary
	// (BG, BG', IOB, IOB', u) so pushes do not allocate.
	sample map[string]float64
}

// NewStreamSet compiles every rule body under its threshold at sampling
// period dtMin minutes (nil thresholds select the rules' CAWOT
// defaults). Table I bodies are pure state predicates, but the
// compilation accepts any past-only rule rendering (e.g. Since-based
// mitigation specifications).
func NewStreamSet(rules []Rule, th Thresholds, p Params, dtMin float64) (*StreamSet, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("scs: stream set needs at least one rule")
	}
	if th == nil {
		th = Defaults(rules)
	}
	p = p.WithDefaults()
	ss := &StreamSet{
		rules:   rules,
		streams: make([]*stl.Stream, len(rules)),
		params:  p,
		sample:  make(map[string]float64, 5),
	}
	for i, r := range rules {
		beta, ok := th[r.ID]
		if !ok {
			return nil, fmt.Errorf("scs: missing threshold for rule %d", r.ID)
		}
		s, err := stl.NewStream(r.STL(p, beta), dtMin)
		if err != nil {
			return nil, fmt.Errorf("scs: rule %d: %w", r.ID, err)
		}
		ss.streams[i] = s
	}
	return ss, nil
}

// Rules returns the compiled rule set.
func (ss *StreamSet) Rules() []Rule { return ss.rules }

// Len returns the number of samples pushed.
func (ss *StreamSet) Len() int { return ss.n }

// Push feeds one control cycle's context state to every rule stream and
// returns the aggregate verdict.
func (ss *StreamSet) Push(s State) (StreamVerdict, error) {
	ss.sample["BG"] = s.BG
	ss.sample["BG'"] = s.BGPrime
	ss.sample["IOB"] = s.IOB
	ss.sample["IOB'"] = s.IOBPrime
	ss.sample["u"] = float64(s.Action)

	v := StreamVerdict{Sat: true, MinRobust: math.Inf(1)}
	for i, stream := range ss.streams {
		sat, rob, err := stream.Push(ss.sample)
		if err != nil {
			return StreamVerdict{}, fmt.Errorf("scs: rule %d: %w", ss.rules[i].ID, err)
		}
		v.Sat = v.Sat && sat
		if rob < v.MinRobust {
			v.MinRobust = rob
			v.WorstRule = ss.rules[i].ID
		}
	}
	ss.n++
	return v, nil
}

// StateSamples returns the total buffered per-sample entries across all
// rule streams — the quantity that must stay O(window) regardless of
// session length.
func (ss *StreamSet) StateSamples() int {
	t := 0
	for _, s := range ss.streams {
		t += s.StateSamples()
	}
	return t
}

// Reset clears all rule stream state.
func (ss *StreamSet) Reset() {
	for _, s := range ss.streams {
		s.Reset()
	}
	ss.n = 0
}
