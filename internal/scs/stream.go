package scs

import (
	"fmt"
	"math"

	"repro/internal/stl"
	"repro/internal/trace"
)

// StreamVerdict is the per-cycle result of evaluating a rule set
// incrementally: satisfaction, the raw STL minimum across rule bodies,
// and the signed rule margin with its arg-min rule and hazard
// attribution. It is the single evaluation the streaming CAWT monitor,
// Algorithm 1 margin scaling, and fleet hazard telemetry all read from.
type StreamVerdict struct {
	// Sat is true when every rule body held at the pushed sample.
	Sat bool
	// MinRobust is the minimum STL robustness across all rule bodies
	// (the quantitative semantics of the Eq. 1 implication); WorstRule
	// is the ID of the rule attaining it. Note that a violated
	// forbidden-action rule bottoms out at 0 here — the action equality
	// atom has zero robustness at the boundary — which is why Margin
	// below exists.
	MinRobust float64
	WorstRule int
	// Margin is the signed rule margin: with Sat it equals MinRobust
	// (distance to the nearest unsafe-control-action boundary), and on a
	// violation it is minus the violated rule's antecedent robustness —
	// how deep the state sits inside the unsafe context — so alarms carry
	// a usable severity. Rule is the ID of the rule attaining Margin.
	Margin float64
	Rule   int
	// Hazard is the predicted hazard class over the violated rules
	// (H1 wins ties, being the acute hazard); HazardNone when Sat.
	Hazard trace.HazardType
}

// StreamSet renders a Safety Context Specification's rule bodies (the
// formulas under G[t0,te] in Eq. 1) through the incremental streaming
// STL engine. The rules' antecedents compile into one hash-consed
// stl.StreamGroup — identical subformulas (shared context atoms, shared
// windows) evaluate once per cycle no matter how many rules contain
// them — and the structurally fixed consequent (the u == action
// equality, per Rule.Consequent) folds into the same push as inline
// arithmetic, so one evaluation yields satisfaction, the STL body
// robustness, and the signed rule margin. Pushes are O(1) amortized per
// rule and total state is bounded by the rules' window lengths, never
// by session length, so a StreamSet can stay attached to a continuous
// serving session forever.
type StreamSet struct {
	rules  []Rule
	group  *stl.StreamGroup
	ante   []int // group index of each rule's antecedent
	params Params
	n      int

	// Per-rule consequent specialization: the action the rule names and
	// whether it is required (rule 10) or forbidden.
	action   []float64
	required []bool
	isH1     []bool

	// vals is the reused PushVector binding; sel maps each group
	// variable slot to its State field so pushes touch no maps.
	vals  []float64
	sel   []int
	fired []int // IDs of the rules violated at the last push
}

// State field selectors for the rule vocabulary.
const (
	selBG = iota
	selBGPrime
	selIOB
	selIOBPrime
	selAction
)

// NewStreamSet compiles every rule body under its threshold at sampling
// period dtMin minutes (nil thresholds select the rules' CAWOT
// defaults). Table I bodies are pure state predicates, but the
// compilation accepts any past-only rule rendering (e.g. Since-based
// mitigation specifications).
func NewStreamSet(rules []Rule, th Thresholds, p Params, dtMin float64) (*StreamSet, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("scs: stream set needs at least one rule")
	}
	if th == nil {
		th = Defaults(rules)
	}
	p = p.WithDefaults()
	group, err := stl.NewStreamGroup(dtMin)
	if err != nil {
		return nil, fmt.Errorf("scs: %w", err)
	}
	ss := &StreamSet{
		rules:    rules,
		group:    group,
		ante:     make([]int, len(rules)),
		params:   p,
		action:   make([]float64, len(rules)),
		required: make([]bool, len(rules)),
		isH1:     make([]bool, len(rules)),
		fired:    make([]int, 0, len(rules)),
	}
	for i, r := range rules {
		beta, ok := th[r.ID]
		if !ok {
			return nil, fmt.Errorf("scs: missing threshold for rule %d", r.ID)
		}
		if r.Hazard == trace.HazardNone {
			// Every Safety Context Specification rule predicts a hazard
			// class; a zero Hazard is a construction bug, and admitting it
			// would fabricate an H2 attribution on violation.
			return nil, fmt.Errorf("scs: rule %d has no hazard class", r.ID)
		}
		if ss.ante[i], err = group.Add(r.Antecedent(p, beta)); err != nil {
			return nil, fmt.Errorf("scs: rule %d antecedent: %w", r.ID, err)
		}
		ss.action[i] = float64(r.Action)
		ss.required[i] = r.Required
		ss.isH1[i] = r.Hazard == trace.HazardH1
	}
	for _, name := range group.Vars() {
		switch name {
		case "BG":
			ss.sel = append(ss.sel, selBG)
		case "BG'":
			ss.sel = append(ss.sel, selBGPrime)
		case "IOB":
			ss.sel = append(ss.sel, selIOB)
		case "IOB'":
			ss.sel = append(ss.sel, selIOBPrime)
		case "u":
			ss.sel = append(ss.sel, selAction)
		default:
			return nil, fmt.Errorf("scs: rule set reads unknown variable %q", name)
		}
	}
	ss.vals = make([]float64, len(ss.sel))
	return ss, nil
}

// Rules returns the compiled rule set.
func (ss *StreamSet) Rules() []Rule { return ss.rules }

// Len returns the number of samples pushed.
func (ss *StreamSet) Len() int { return ss.n }

// Push feeds one control cycle's context state to every rule stream and
// returns the aggregate verdict. Alarm, STL robustness, signed margin,
// and rule attribution all come from this single incremental
// evaluation.
func (ss *StreamSet) Push(s State) (StreamVerdict, error) {
	for i, sel := range ss.sel {
		switch sel {
		case selBG:
			ss.vals[i] = s.BG
		case selBGPrime:
			ss.vals[i] = s.BGPrime
		case selIOB:
			ss.vals[i] = s.IOB
		case selIOBPrime:
			ss.vals[i] = s.IOBPrime
		case selAction:
			ss.vals[i] = float64(s.Action)
		}
	}
	if err := ss.group.PushVector(ss.vals); err != nil {
		return StreamVerdict{}, fmt.Errorf("scs: %w", err)
	}
	sats, robs := ss.group.Results()

	u := float64(s.Action)
	v := StreamVerdict{Sat: true, MinRobust: math.Inf(1)}
	ss.fired = ss.fired[:0]
	worst := math.Inf(1) // violation depth of the worst violated rule
	anyH1 := false
	for i := range ss.rules {
		ls, lr := sats[ss.ante[i]], robs[ss.ante[i]]
		// Consequent inline: rob(u == a) = -|u - a|, negated for the
		// forbidden-action form ¬(u == a). Identical to compiling
		// Rule.Consequent, minus the dispatch.
		rs, rr := u == ss.action[i], -math.Abs(u-ss.action[i])
		if !ss.required[i] {
			rs, rr = !rs, -rr
		}
		rob := rr // Eq. 1 body robustness: max(-lr, rr), finite operands
		if -lr > rob {
			rob = -lr
		}
		if rob < v.MinRobust {
			v.MinRobust = rob
			v.WorstRule = ss.rules[i].ID
		}
		if !ls || rs {
			continue // body satisfied
		}
		v.Sat = false
		ss.fired = append(ss.fired, ss.rules[i].ID)
		if ss.isH1[i] {
			anyH1 = true
		}
		if m := -lr; m < worst {
			worst = m
			v.Rule = ss.rules[i].ID
		}
	}
	if v.Sat {
		v.Margin, v.Rule = v.MinRobust, v.WorstRule
	} else {
		v.Margin = worst
		v.Hazard = trace.HazardH2
		if anyH1 {
			v.Hazard = trace.HazardH1
		}
	}
	ss.n++
	return v, nil
}

// Fired returns the IDs of the rules violated at the last push, in rule
// order. The slice is reused by the next Push; callers that retain it
// must copy.
func (ss *StreamSet) Fired() []int { return ss.fired }

// StateSamples returns the total buffered per-sample entries across the
// rule set's unique operator nodes (hash-consed subformulas count once)
// — the quantity that must stay O(window) regardless of session length.
func (ss *StreamSet) StateSamples() int { return ss.group.StateSamples() }

// Reset clears all rule stream state.
func (ss *StreamSet) Reset() {
	ss.group.Reset()
	ss.n = 0
	ss.fired = ss.fired[:0]
}
