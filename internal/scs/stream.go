package scs

import (
	"fmt"

	"repro/internal/stl"
	"repro/internal/trace"
)

// StreamVerdict is the per-cycle result of evaluating a rule set
// incrementally: satisfaction, the raw STL minimum across rule bodies,
// and the signed rule margin with its arg-min rule and hazard
// attribution. It is the single evaluation the streaming CAWT monitor,
// Algorithm 1 margin scaling, and fleet hazard telemetry all read from.
type StreamVerdict struct {
	// Sat is true when every rule body held at the pushed sample.
	Sat bool
	// MinRobust is the minimum STL robustness across all rule bodies
	// (the quantitative semantics of the Eq. 1 implication); WorstRule
	// is the ID of the rule attaining it. Note that a violated
	// forbidden-action rule bottoms out at 0 here — the action equality
	// atom has zero robustness at the boundary — which is why Margin
	// below exists.
	MinRobust float64
	WorstRule int
	// Margin is the signed rule margin: with Sat it equals MinRobust
	// (distance to the nearest unsafe-control-action boundary), and on a
	// violation it is minus the violated rule's antecedent robustness —
	// how deep the state sits inside the unsafe context — so alarms carry
	// a usable severity. Rule is the ID of the rule attaining Margin.
	Margin float64
	Rule   int
	// Hazard is the predicted hazard class over the violated rules
	// (H1 wins ties, being the acute hazard); HazardNone when Sat.
	Hazard trace.HazardType
}

// StreamSet renders a Safety Context Specification's rule bodies (the
// formulas under G[t0,te] in Eq. 1) through the incremental streaming
// STL engine. The rules' antecedents compile into one hash-consed
// stl.StreamGroup — identical subformulas (shared context atoms, shared
// windows) evaluate once per cycle no matter how many rules contain
// them — and the structurally fixed consequent (the u == action
// equality, per Rule.Consequent) folds into the same push as inline
// arithmetic, so one evaluation yields satisfaction, the STL body
// robustness, and the signed rule margin. Pushes are O(1) amortized per
// rule and total state is bounded by the rules' window lengths, never
// by session length, so a StreamSet can stay attached to a continuous
// serving session forever.
type StreamSet struct {
	rules  []Rule
	group  *stl.StreamGroup
	ante   []int // group index of each rule's antecedent
	params Params
	n      int

	// fold is the shared Eq. 1 verdict fold (see fold.go); ls/lr are its
	// reused per-rule antecedent scratch.
	fold ruleFold
	ls   []bool
	lr   []float64

	// vals is the reused PushVector binding; sel maps each group
	// variable slot to its State field so pushes touch no maps.
	vals  []float64
	sel   []int
	fired []int // IDs of the rules violated at the last push
}

// State field selectors for the rule vocabulary.
const (
	selBG = iota
	selBGPrime
	selIOB
	selIOBPrime
	selAction
)

// NewStreamSet compiles every rule body under its threshold at sampling
// period dtMin minutes (nil thresholds select the rules' CAWOT
// defaults). Table I bodies are pure state predicates, but the
// compilation accepts any past-only rule rendering (e.g. Since-based
// mitigation specifications).
func NewStreamSet(rules []Rule, th Thresholds, p Params, dtMin float64) (*StreamSet, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("scs: stream set needs at least one rule")
	}
	if th == nil {
		th = Defaults(rules)
	}
	p = p.WithDefaults()
	group, err := stl.NewStreamGroup(dtMin)
	if err != nil {
		return nil, fmt.Errorf("scs: %w", err)
	}
	ss := &StreamSet{
		rules:  rules,
		group:  group,
		params: p,
		fold:   newRuleFold(rules),
		ls:     make([]bool, len(rules)),
		lr:     make([]float64, len(rules)),
		fired:  make([]int, 0, len(rules)),
	}
	if ss.ante, err = compileAntecedents(rules, th, p, group.Add); err != nil {
		return nil, err
	}
	if ss.sel, err = fieldSelectors(group.Vars()); err != nil {
		return nil, err
	}
	ss.vals = make([]float64, len(ss.sel))
	return ss, nil
}

// Rules returns the compiled rule set.
func (ss *StreamSet) Rules() []Rule { return ss.rules }

// Len returns the number of samples pushed.
func (ss *StreamSet) Len() int { return ss.n }

// Push feeds one control cycle's context state to every rule stream and
// returns the aggregate verdict. Alarm, STL robustness, signed margin,
// and rule attribution all come from this single incremental
// evaluation.
//
//fleetvet:noalloc
func (ss *StreamSet) Push(s State) (StreamVerdict, error) {
	for i, sel := range ss.sel {
		switch sel {
		case selBG:
			ss.vals[i] = s.BG
		case selBGPrime:
			ss.vals[i] = s.BGPrime
		case selIOB:
			ss.vals[i] = s.IOB
		case selIOBPrime:
			ss.vals[i] = s.IOBPrime
		case selAction:
			ss.vals[i] = float64(s.Action)
		}
	}
	if err := ss.group.PushVector(ss.vals); err != nil {
		return StreamVerdict{}, fmt.Errorf("scs: %w", err)
	}
	sats, robs := ss.group.Results()
	for i := range ss.rules {
		ss.ls[i], ss.lr[i] = sats[ss.ante[i]], robs[ss.ante[i]]
	}
	var v StreamVerdict
	v, ss.fired = ss.fold.fold(float64(s.Action), ss.ls, ss.lr, ss.fired[:0])
	ss.n++
	return v, nil
}

// Fired returns the IDs of the rules violated at the last push, in rule
// order. The slice is reused by the next Push; callers that retain it
// must copy.
func (ss *StreamSet) Fired() []int { return ss.fired }

// StateSamples returns the total buffered per-sample entries across the
// rule set's unique operator nodes (hash-consed subformulas count once)
// — the quantity that must stay O(window) regardless of session length.
func (ss *StreamSet) StateSamples() int { return ss.group.StateSamples() }

// Reset clears all rule stream state.
func (ss *StreamSet) Reset() {
	ss.group.Reset()
	ss.n = 0
	ss.fired = ss.fired[:0]
}
