package scs

import (
	"fmt"

	"repro/internal/stl"
	"repro/internal/trace"
)

// MitigationRule is one Hazard Mitigation Specification tuple
// (ρ(µ(x)), uρ) of Section III-B2: in the given context, the safe
// control action moves the system back toward the desirable region X*.
type MitigationRule struct {
	ID     int
	Hazard trace.HazardType // hazard class this rule corrects

	BGSide   BGSide
	BGTrend  Trend
	IOBTrend Trend

	// SafeAction is the corrective control action uρ.
	SafeAction trace.Action
	// RateFactor scales the patient's basal rate to produce the
	// corrective command (0 for stop).
	RateFactor float64
	// DeadlineMin is ts of Eq. 2: the latest time after entering the
	// context by which the corrective action must have been taken.
	DeadlineMin float64
}

// ContextHolds reports whether the rule's context matches the state.
func (r MitigationRule) ContextHolds(s State, p Params) bool {
	p = p.WithDefaults()
	switch r.BGSide {
	case BGAbove:
		if !(s.BG > p.BGT) {
			return false
		}
	case BGBelow:
		if !(s.BG < p.BGT) {
			return false
		}
	}
	return r.BGTrend.matches(s.BGPrime, p.BGDerivEps) &&
		r.IOBTrend.matches(s.IOBPrime, p.IOBDerivEps)
}

// STL renders the rule in the Eq. 2 form
//
//	G[t0,te]( (F[0,ts] uρ) S context )
func (r MitigationRule) STL(p Params) stl.Formula {
	p = p.WithDefaults()
	var ctx []stl.Formula
	switch r.BGSide {
	case BGAbove:
		ctx = append(ctx, &stl.Atom{Var: "BG", Op: stl.OpGT, Threshold: p.BGT})
	case BGBelow:
		ctx = append(ctx, &stl.Atom{Var: "BG", Op: stl.OpLT, Threshold: p.BGT})
	}
	ctx = append(ctx, r.BGTrend.atoms("BG'", p.BGDerivEps)...)
	ctx = append(ctx, r.IOBTrend.atoms("IOB'", p.IOBDerivEps)...)
	action := &stl.Atom{Var: "u", Op: stl.OpEQ, Threshold: float64(r.SafeAction)}
	var context stl.Formula = stl.Const(true)
	if len(ctx) > 0 {
		context = stl.NewAnd(ctx...)
	}
	inner := &stl.Since{
		Bounds: stl.Unbounded,
		L:      &stl.Eventually{Bounds: stl.Bounds{A: 0, B: r.DeadlineMin}, Child: action},
		R:      context,
	}
	return &stl.Globally{Bounds: stl.Unbounded, Child: inner}
}

// String identifies the rule.
func (r MitigationRule) String() string {
	return fmt.Sprintf("hms%d(%s -> %s within %.0fmin)", r.ID, r.Hazard, r.SafeAction.Short(), r.DeadlineMin)
}

// HMS is a Hazard Mitigation Specification: an ordered rule set queried
// when the monitor predicts a hazard. Earlier rules win.
type HMS struct {
	Rules  []MitigationRule
	Params Params
}

// DefaultHMS returns a context-dependent mitigation specification: for a
// predicted H1 (over-insulin) the pump is cut; for a predicted H2 the
// correction scales with how aggressively glucose is moving — a rising
// hyperglycemia with falling IOB gets the full temp-basal ceiling, a
// merely stagnant one gets a gentler boost. Deadlines come from the
// campaign's time-to-hazard distribution (hours, Fig. 7b), discounted
// for safety margin.
func DefaultHMS() HMS {
	return HMS{Rules: []MitigationRule{
		{ID: 1, Hazard: trace.HazardH1, BGSide: BGBelow, BGTrend: TrendDown, IOBTrend: TrendAny,
			SafeAction: trace.ActionStop, RateFactor: 0, DeadlineMin: 30},
		{ID: 2, Hazard: trace.HazardH1, BGSide: BGAny, BGTrend: TrendAny, IOBTrend: TrendAny,
			SafeAction: trace.ActionStop, RateFactor: 0, DeadlineMin: 60},
		{ID: 3, Hazard: trace.HazardH2, BGSide: BGAbove, BGTrend: TrendUp, IOBTrend: TrendDownOrFlat,
			SafeAction: trace.ActionIncrease, RateFactor: 4, DeadlineMin: 60},
		{ID: 4, Hazard: trace.HazardH2, BGSide: BGAbove, BGTrend: TrendAny, IOBTrend: TrendAny,
			SafeAction: trace.ActionIncrease, RateFactor: 2.5, DeadlineMin: 90},
		{ID: 5, Hazard: trace.HazardH2, BGSide: BGAny, BGTrend: TrendAny, IOBTrend: TrendAny,
			SafeAction: trace.ActionIncrease, RateFactor: 1.5, DeadlineMin: 120},
	}}
}

// Select returns the corrective insulin rate (U/h) for a predicted
// hazard in the given state, and the rule that selected it. The boolean
// is false when no rule's context matches (the caller should fall back
// to the fixed Algorithm 1 action).
func (h HMS) Select(hazard trace.HazardType, s State, basal float64) (float64, MitigationRule, bool) {
	for _, r := range h.Rules {
		if r.Hazard != hazard {
			continue
		}
		if r.ContextHolds(s, h.Params) {
			return r.RateFactor * basal, r, true
		}
	}
	return 0, MitigationRule{}, false
}

// Validate checks the specification for structural errors.
func (h HMS) Validate() error {
	seen := make(map[int]bool, len(h.Rules))
	for _, r := range h.Rules {
		if seen[r.ID] {
			return fmt.Errorf("scs: duplicate HMS rule ID %d", r.ID)
		}
		seen[r.ID] = true
		if r.Hazard == trace.HazardNone {
			return fmt.Errorf("scs: HMS rule %d has no hazard", r.ID)
		}
		if r.RateFactor < 0 {
			return fmt.Errorf("scs: HMS rule %d has negative rate factor", r.ID)
		}
		if r.DeadlineMin <= 0 {
			return fmt.Errorf("scs: HMS rule %d has non-positive deadline", r.ID)
		}
	}
	return nil
}
