package scs

import (
	"math/rand"
	"testing"

	"repro/internal/stl"
	"repro/internal/trace"
)

func randState(rng *rand.Rand) State {
	return State{
		BG:       40 + 300*rng.Float64(),
		BGPrime:  -6 + 12*rng.Float64(),
		IOB:      -2 + 10*rng.Float64(),
		IOBPrime: -0.05 + 0.1*rng.Float64(),
		Action:   trace.Action(1 + rng.Intn(4)),
	}
}

// TestStreamSetMatchesRuleSemantics checks the streamed Table I bodies
// against both evaluation paths that already exist: the direct
// Rule.Violated predicate and the offline STL trace semantics.
func TestStreamSetMatchesRuleSemantics(t *testing.T) {
	rules := TableI()
	th := Defaults(rules)
	var p Params
	ss, err := NewStreamSet(rules, th, p, 5)
	if err != nil {
		t.Fatal(err)
	}

	offline, err := stl.NewTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	formulas := make([]stl.Formula, len(rules))
	for i, r := range rules {
		formulas[i] = r.STL(p, th[r.ID])
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		s := randState(rng)
		offline.Append(map[string]float64{
			"BG": s.BG, "BG'": s.BGPrime, "IOB": s.IOB, "IOB'": s.IOBPrime,
			"u": float64(s.Action),
		})
		v, err := ss.Push(s)
		if err != nil {
			t.Fatal(err)
		}

		anyViolated := false
		for k, r := range rules {
			if r.Violated(s, p, th[r.ID]) {
				anyViolated = true
			}
			wantSat, err := formulas[k].Sat(offline, i)
			if err != nil {
				t.Fatal(err)
			}
			if wantSat == r.Violated(s, p, th[r.ID]) {
				t.Fatalf("step %d rule %d: STL sat %v contradicts Violated", i, r.ID, wantSat)
			}
		}
		if v.Sat == anyViolated {
			t.Errorf("step %d: streamed Sat=%v but anyViolated=%v", i, v.Sat, anyViolated)
		}

		// The streamed minimum margin must equal the offline minimum.
		wantMin, wantRule := 0.0, 0
		for k := range rules {
			rob, err := formulas[k].Robustness(offline, i)
			if err != nil {
				t.Fatal(err)
			}
			if k == 0 || rob < wantMin {
				wantMin, wantRule = rob, rules[k].ID
			}
		}
		if v.MinRobust != wantMin || v.WorstRule != wantRule {
			t.Errorf("step %d: streamed margin %v (rule %d), offline %v (rule %d)",
				i, v.MinRobust, v.WorstRule, wantMin, wantRule)
		}
	}
}

// TestStreamSetBoundedState: the full Table I set attached to a
// long-running session holds constant state and allocation-free pushes.
func TestStreamSetBoundedState(t *testing.T) {
	rules := TableI()
	ss, err := NewStreamSet(rules, Defaults(rules), Params{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if _, err := ss.Push(randState(rng)); err != nil {
			t.Fatal(err)
		}
	}
	state1k := ss.StateSamples()
	s := randState(rng)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ss.Push(s); err != nil {
			t.Fatal(err)
		}
	})
	for ss.Len() < 50_000 {
		if _, err := ss.Push(randState(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ss.StateSamples(); got != state1k {
		// Table I bodies are pure predicates: zero buffered samples.
		t.Errorf("state changed with session length: %d at 1k, %d at 50k", state1k, got)
	}
	if allocs != 0 {
		t.Errorf("steady-state push allocates %.1f allocs", allocs)
	}
}

func TestStreamSetMissingThreshold(t *testing.T) {
	rules := TableI()
	th := Defaults(rules)
	delete(th, rules[3].ID)
	if _, err := NewStreamSet(rules, th, Params{}, 5); err == nil {
		t.Error("missing threshold should be rejected")
	}
}
