package scs

import (
	"math/rand"
	"testing"

	"repro/internal/stl"
	"repro/internal/trace"
)

func randState(rng *rand.Rand) State {
	return State{
		BG:       40 + 300*rng.Float64(),
		BGPrime:  -6 + 12*rng.Float64(),
		IOB:      -2 + 10*rng.Float64(),
		IOBPrime: -0.05 + 0.1*rng.Float64(),
		Action:   trace.Action(1 + rng.Intn(4)),
	}
}

// TestStreamSetMatchesRuleSemantics checks the streamed Table I bodies
// against both evaluation paths that already exist: the direct
// Rule.Violated predicate and the offline STL trace semantics.
func TestStreamSetMatchesRuleSemantics(t *testing.T) {
	rules := TableI()
	th := Defaults(rules)
	var p Params
	ss, err := NewStreamSet(rules, th, p, 5)
	if err != nil {
		t.Fatal(err)
	}

	offline, err := stl.NewTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	formulas := make([]stl.Formula, len(rules))
	for i, r := range rules {
		formulas[i] = r.STL(p, th[r.ID])
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		s := randState(rng)
		offline.Append(map[string]float64{
			"BG": s.BG, "BG'": s.BGPrime, "IOB": s.IOB, "IOB'": s.IOBPrime,
			"u": float64(s.Action),
		})
		v, err := ss.Push(s)
		if err != nil {
			t.Fatal(err)
		}

		anyViolated := false
		for k, r := range rules {
			if r.Violated(s, p, th[r.ID]) {
				anyViolated = true
			}
			wantSat, err := formulas[k].Sat(offline, i)
			if err != nil {
				t.Fatal(err)
			}
			if wantSat == r.Violated(s, p, th[r.ID]) {
				t.Fatalf("step %d rule %d: STL sat %v contradicts Violated", i, r.ID, wantSat)
			}
		}
		if v.Sat == anyViolated {
			t.Errorf("step %d: streamed Sat=%v but anyViolated=%v", i, v.Sat, anyViolated)
		}

		// The streamed minimum margin must equal the offline minimum.
		wantMin, wantRule := 0.0, 0
		for k := range rules {
			rob, err := formulas[k].Robustness(offline, i)
			if err != nil {
				t.Fatal(err)
			}
			if k == 0 || rob < wantMin {
				wantMin, wantRule = rob, rules[k].ID
			}
		}
		if v.MinRobust != wantMin || v.WorstRule != wantRule {
			t.Errorf("step %d: streamed margin %v (rule %d), offline %v (rule %d)",
				i, v.MinRobust, v.WorstRule, wantMin, wantRule)
		}
	}
}

// TestStreamSetBoundedState: the full Table I set attached to a
// long-running session holds constant state and allocation-free pushes.
func TestStreamSetBoundedState(t *testing.T) {
	rules := TableI()
	ss, err := NewStreamSet(rules, Defaults(rules), Params{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if _, err := ss.Push(randState(rng)); err != nil {
			t.Fatal(err)
		}
	}
	state1k := ss.StateSamples()
	s := randState(rng)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ss.Push(s); err != nil {
			t.Fatal(err)
		}
	})
	for ss.Len() < 50_000 {
		if _, err := ss.Push(randState(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if got := ss.StateSamples(); got != state1k {
		// Table I bodies are pure predicates: zero buffered samples.
		t.Errorf("state changed with session length: %d at 1k, %d at 50k", state1k, got)
	}
	if allocs != 0 {
		t.Errorf("steady-state push allocates %.1f allocs", allocs)
	}
}

func TestStreamSetMissingThreshold(t *testing.T) {
	rules := TableI()
	th := Defaults(rules)
	delete(th, rules[3].ID)
	if _, err := NewStreamSet(rules, th, Params{}, 5); err == nil {
		t.Error("missing threshold should be rejected")
	}
}

// TestStreamSetMarginSemantics pins the signed rule margin added by the
// verdict-API redesign: with every rule satisfied the margin is the
// minimum STL body robustness, and on a violation it is minus the
// violated rule's antecedent robustness (the depth inside the unsafe
// context), with H1 winning hazard ties — all computed offline here
// from the antecedent formulas the rules render.
func TestStreamSetMarginSemantics(t *testing.T) {
	rules := TableI()
	th := Defaults(rules)
	var p Params
	ss, err := NewStreamSet(rules, th, p, 5)
	if err != nil {
		t.Fatal(err)
	}

	offline, err := stl.NewTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	antes := make([]stl.Formula, len(rules))
	for i, r := range rules {
		antes[i] = r.Antecedent(p, th[r.ID])
	}

	rng := rand.New(rand.NewSource(17))
	var alarms, safes int
	for i := 0; i < 2000; i++ {
		s := randState(rng)
		offline.Append(map[string]float64{
			"BG": s.BG, "BG'": s.BGPrime, "IOB": s.IOB, "IOB'": s.IOBPrime,
			"u": float64(s.Action),
		})
		v, err := ss.Push(s)
		if err != nil {
			t.Fatal(err)
		}

		var wantFired []int
		wantMargin, wantRule := 0.0, 0
		wantH1 := false
		first := true
		for k, r := range rules {
			if !r.Violated(s, p, th[r.ID]) {
				continue
			}
			wantFired = append(wantFired, r.ID)
			if r.Hazard == trace.HazardH1 {
				wantH1 = true
			}
			rob, err := antes[k].Robustness(offline, i)
			if err != nil {
				t.Fatal(err)
			}
			if m := -rob; first || m < wantMargin {
				wantMargin, wantRule = m, r.ID
				first = false
			}
		}
		if len(wantFired) == 0 {
			safes++
			// Satisfied: margin is the body minimum (already checked to
			// equal the offline minimum by TestStreamSetMatchesRuleSemantics).
			if v.Margin != v.MinRobust || v.Rule != v.WorstRule {
				t.Fatalf("step %d: safe margin %v (rule %d) != MinRobust %v (rule %d)",
					i, v.Margin, v.Rule, v.MinRobust, v.WorstRule)
			}
			if v.Hazard != trace.HazardNone {
				t.Fatalf("step %d: hazard %v on a satisfied push", i, v.Hazard)
			}
			if v.Margin < 0 {
				t.Fatalf("step %d: satisfied push with negative margin %v", i, v.Margin)
			}
			continue
		}
		alarms++
		if v.Sat {
			t.Fatalf("step %d: Sat despite %v violated", i, wantFired)
		}
		if v.Margin != wantMargin || v.Rule != wantRule {
			t.Fatalf("step %d: margin %v (rule %d), want %v (rule %d)",
				i, v.Margin, v.Rule, wantMargin, wantRule)
		}
		if v.Margin > 0 {
			t.Fatalf("step %d: violation with positive margin %v", i, v.Margin)
		}
		wantHazard := trace.HazardH2
		if wantH1 {
			wantHazard = trace.HazardH1
		}
		if v.Hazard != wantHazard {
			t.Fatalf("step %d: hazard %v, want %v (fired %v)", i, v.Hazard, wantHazard, wantFired)
		}
		got := ss.Fired()
		if len(got) != len(wantFired) {
			t.Fatalf("step %d: fired %v, want %v", i, got, wantFired)
		}
		for j := range got {
			if got[j] != wantFired[j] {
				t.Fatalf("step %d: fired %v, want %v", i, got, wantFired)
			}
		}
	}
	if alarms == 0 || safes == 0 {
		t.Fatalf("degenerate coverage: %d alarms, %d safe pushes", alarms, safes)
	}
}

// TestStreamSetRejectsHazardlessRule: a rule without a hazard class is
// a construction bug (its violation would fabricate an H2 attribution).
func TestStreamSetRejectsHazardlessRule(t *testing.T) {
	rules := TableI()
	rules[3].Hazard = trace.HazardNone
	if _, err := NewStreamSet(rules, Defaults(rules), Params{}, 5); err == nil {
		t.Error("hazard-less rule should be rejected")
	}
}
