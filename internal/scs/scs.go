package scs

import (
	"fmt"
	"math"

	"repro/internal/stl"
	"repro/internal/trace"
)

// DefaultBGT is the BG target boundary (mg/dL) separating the hyper- and
// hypoglycemic context halves of Table I.
const DefaultBGT = 120

// DefaultDerivEps is the band (per-minute units) within which a
// derivative is treated as zero: CGM and IOB derivatives are noisy finite
// differences, so the three-way trend split (>0, =0, <0) needs a
// tolerance.
const (
	DefaultBGDerivEps  = 0.2   // mg/dL/min
	DefaultIOBDerivEps = 0.002 // U/min
)

// Trend classifies a derivative's sign within a tolerance band.
type Trend int

// Trends of a state variable's rate of change.
const (
	// TrendAny matches every derivative.
	TrendAny Trend = iota
	// TrendUp requires derivative > eps.
	TrendUp
	// TrendDown requires derivative < -eps.
	TrendDown
	// TrendFlat requires |derivative| <= eps.
	TrendFlat
	// TrendUpOrFlat requires derivative >= -eps.
	TrendUpOrFlat
	// TrendDownOrFlat requires derivative <= eps.
	TrendDownOrFlat
)

// matches reports whether derivative d with tolerance eps satisfies the
// trend.
func (t Trend) matches(d, eps float64) bool {
	switch t {
	case TrendAny:
		return true
	case TrendUp:
		return d > eps
	case TrendDown:
		return d < -eps
	case TrendFlat:
		return math.Abs(d) <= eps
	case TrendUpOrFlat:
		return d >= -eps
	case TrendDownOrFlat:
		return d <= eps
	default:
		return false
	}
}

// atoms renders the trend as STL conjuncts over the named variable.
func (t Trend) atoms(v string, eps float64) []stl.Formula {
	switch t {
	case TrendUp:
		return []stl.Formula{&stl.Atom{Var: v, Op: stl.OpGT, Threshold: eps}}
	case TrendDown:
		return []stl.Formula{&stl.Atom{Var: v, Op: stl.OpLT, Threshold: -eps}}
	case TrendFlat:
		return []stl.Formula{
			&stl.Atom{Var: v, Op: stl.OpGE, Threshold: -eps},
			&stl.Atom{Var: v, Op: stl.OpLE, Threshold: eps},
		}
	case TrendUpOrFlat:
		return []stl.Formula{&stl.Atom{Var: v, Op: stl.OpGE, Threshold: -eps}}
	case TrendDownOrFlat:
		return []stl.Formula{&stl.Atom{Var: v, Op: stl.OpLE, Threshold: eps}}
	default:
		return nil
	}
}

// BGSide selects the glucose half-plane of the context.
type BGSide int

// Glucose context sides relative to the BGT boundary.
const (
	// BGAny places no constraint on BG (rule 10's context is the
	// learnable BG bound itself).
	BGAny BGSide = iota
	// BGAbove requires BG > BGT.
	BGAbove
	// BGBelow requires BG < BGT.
	BGBelow
)

// Rule is one Safety Context Specification row of Table I.
type Rule struct {
	ID     int
	Hazard trace.HazardType
	// Action is the control action the rule constrains. When Required
	// is false the rule forbids Action in the context (⇒ ¬u); when true
	// (rule 10) the rule demands it (⇒ u).
	Action   trace.Action
	Required bool

	BGSide   BGSide
	BGTrend  Trend
	IOBTrend Trend

	// LearnVar is the variable carrying the learnable threshold
	// ("IOB" or "BG") compared with LearnOp against β.
	LearnVar string
	LearnOp  stl.CmpOp

	// Default is the CAWOT (no threshold learning) value of β; Lo and Hi
	// bound the learned value.
	Default float64
	Lo, Hi  float64

	// HarvestLookback overrides how many cycles before hazard onset the
	// learner harvests negative examples for this rule (0 = learner
	// default). Required-action rules use a short window: the examples
	// that matter are the states where the action was still able to
	// avert the imminent hazard.
	HarvestLookback int
	// HarvestHazardOnly restricts harvesting to samples inside hazard
	// episodes. Rule 10 uses this: its predicate is on BG alone, and the
	// BG values for which stopping insulin is unconditionally required
	// are the ones already inside the hypoglycemic hazard region —
	// harvesting the approach trajectory would drag β21 up into the
	// euglycemic band and flood the monitor with false alarms.
	HarvestHazardOnly bool
	// HarvestTrim overrides the learner's outlier-trim quantile for this
	// rule (0 = learner default). Rule 10 trims aggressively: hazard
	// windows are labeled an hour at a time, so their leading samples
	// still carry euglycemic BG values that are not representative of
	// the "stop insulin now" boundary.
	HarvestTrim float64
}

// State is the per-cycle context vector µ(x) plus the issued action.
type State struct {
	BG       float64
	BGPrime  float64
	IOB      float64
	IOBPrime float64
	Action   trace.Action
}

// Params carries the evaluation constants shared by all rules.
type Params struct {
	BGT         float64 // BG target boundary (default DefaultBGT)
	BGDerivEps  float64
	IOBDerivEps float64
}

// WithDefaults fills zero fields.
func (p Params) WithDefaults() Params {
	if p.BGT == 0 {
		p.BGT = DefaultBGT
	}
	if p.BGDerivEps == 0 {
		p.BGDerivEps = DefaultBGDerivEps
	}
	if p.IOBDerivEps == 0 {
		p.IOBDerivEps = DefaultIOBDerivEps
	}
	return p
}

// ContextHolds reports whether the rule's fixed context (everything but
// the learnable predicate and the action) matches the state.
func (r Rule) ContextHolds(s State, p Params) bool {
	p = p.WithDefaults()
	switch r.BGSide {
	case BGAbove:
		if !(s.BG > p.BGT) {
			return false
		}
	case BGBelow:
		if !(s.BG < p.BGT) {
			return false
		}
	}
	if !r.BGTrend.matches(s.BGPrime, p.BGDerivEps) {
		return false
	}
	if !r.IOBTrend.matches(s.IOBPrime, p.IOBDerivEps) {
		return false
	}
	return true
}

// learnableHolds evaluates the β predicate.
func (r Rule) learnableHolds(s State, beta float64) bool {
	v := s.BG
	if r.LearnVar == "IOB" {
		v = s.IOB
	}
	switch r.LearnOp {
	case stl.OpLT:
		return v < beta
	case stl.OpLE:
		return v <= beta
	case stl.OpGT:
		return v > beta
	case stl.OpGE:
		return v >= beta
	default:
		return false
	}
}

// LearnValue extracts the learnable variable's value from the state.
func (r Rule) LearnValue(s State) float64 {
	if r.LearnVar == "IOB" {
		return s.IOB
	}
	return s.BG
}

// Violated reports whether the state violates the rule under threshold
// beta: the full context holds and the forbidden action was issued (or
// the required action was not).
func (r Rule) Violated(s State, p Params, beta float64) bool {
	if !r.ContextHolds(s, p) || !r.learnableHolds(s, beta) {
		return false
	}
	if r.Required {
		return s.Action != r.Action
	}
	return s.Action == r.Action
}

// Antecedent renders the left side of the Eq. 1 implication: the rule's
// fixed context conjoined with the learnable β predicate. Its robustness
// is the rule's unsafe-context margin — how far the state sits inside
// (positive) or outside (negative) the context in which the action is
// constrained.
func (r Rule) Antecedent(p Params, beta float64) stl.Formula {
	p = p.WithDefaults()
	var ctx []stl.Formula
	switch r.BGSide {
	case BGAbove:
		ctx = append(ctx, &stl.Atom{Var: "BG", Op: stl.OpGT, Threshold: p.BGT})
	case BGBelow:
		ctx = append(ctx, &stl.Atom{Var: "BG", Op: stl.OpLT, Threshold: p.BGT})
	}
	ctx = append(ctx, r.BGTrend.atoms("BG'", p.BGDerivEps)...)
	ctx = append(ctx, r.IOBTrend.atoms("IOB'", p.IOBDerivEps)...)
	ctx = append(ctx, &stl.Atom{Var: r.LearnVar, Op: r.LearnOp, Threshold: beta})
	return stl.NewAnd(ctx...)
}

// Consequent renders the action side of the implication: ¬u for a
// forbidden action, u for a required one (rule 10).
func (r Rule) Consequent() stl.Formula {
	actionAtom := &stl.Atom{Var: "u", Op: stl.OpEQ, Threshold: float64(r.Action)}
	if r.Required {
		return actionAtom
	}
	return &stl.Not{Child: actionAtom}
}

// STL renders the rule body (the formula under G[t0,te] in Eq. 1) over
// trace variables BG, BG', IOB, IOB', u.
func (r Rule) STL(p Params, beta float64) stl.Formula {
	return &stl.Implies{L: r.Antecedent(p, beta), R: r.Consequent()}
}

// GlobalSTL wraps the rule body in the G[t0,te] of Eq. 1.
func (r Rule) GlobalSTL(p Params, beta float64) stl.Formula {
	return &stl.Globally{Bounds: stl.Unbounded, Child: r.STL(p, beta)}
}

// String identifies the rule.
func (r Rule) String() string {
	verb := "not"
	if r.Required {
		verb = "require"
	}
	return fmt.Sprintf("rule%d(%s %s %s, learn %s%s β)", r.ID, r.Hazard, verb,
		r.Action.Short(), r.LearnVar, r.LearnOp)
}

// TableI returns the twelve Safety Context Specification rules of the
// paper's Table I. Default thresholds are the generic (CAWOT) values;
// Lo/Hi bound the data-driven refinement. Net IOB (relative to scheduled
// basal) is signed, hence the negative lower bounds.
func TableI() []Rule {
	const (
		iobLo = -5
		iobHi = 15
	)
	return []Rule{
		{ID: 1, Hazard: trace.HazardH2, Action: trace.ActionDecrease,
			BGSide: BGAbove, BGTrend: TrendUp, IOBTrend: TrendDown,
			LearnVar: "IOB", LearnOp: stl.OpLT, Default: 0.5, Lo: iobLo, Hi: iobHi},
		{ID: 2, Hazard: trace.HazardH2, Action: trace.ActionDecrease,
			BGSide: BGAbove, BGTrend: TrendUp, IOBTrend: TrendFlat,
			LearnVar: "IOB", LearnOp: stl.OpLT, Default: 0.5, Lo: iobLo, Hi: iobHi},
		{ID: 3, Hazard: trace.HazardH2, Action: trace.ActionDecrease,
			BGSide: BGAbove, BGTrend: TrendDown, IOBTrend: TrendUp,
			LearnVar: "IOB", LearnOp: stl.OpLT, Default: 0.5, Lo: iobLo, Hi: iobHi},
		{ID: 4, Hazard: trace.HazardH2, Action: trace.ActionDecrease,
			BGSide: BGAbove, BGTrend: TrendDown, IOBTrend: TrendDown,
			LearnVar: "IOB", LearnOp: stl.OpLT, Default: 0.5, Lo: iobLo, Hi: iobHi},
		{ID: 5, Hazard: trace.HazardH2, Action: trace.ActionDecrease,
			BGSide: BGAbove, BGTrend: TrendDown, IOBTrend: TrendFlat,
			LearnVar: "IOB", LearnOp: stl.OpLT, Default: 0.5, Lo: iobLo, Hi: iobHi},
		{ID: 6, Hazard: trace.HazardH1, Action: trace.ActionIncrease,
			BGSide: BGBelow, BGTrend: TrendDown, IOBTrend: TrendUp,
			LearnVar: "IOB", LearnOp: stl.OpGT, Default: 2.0, Lo: iobLo, Hi: iobHi},
		{ID: 7, Hazard: trace.HazardH1, Action: trace.ActionIncrease,
			BGSide: BGBelow, BGTrend: TrendDown, IOBTrend: TrendDown,
			LearnVar: "IOB", LearnOp: stl.OpGT, Default: 2.0, Lo: iobLo, Hi: iobHi},
		{ID: 8, Hazard: trace.HazardH1, Action: trace.ActionIncrease,
			BGSide: BGBelow, BGTrend: TrendDown, IOBTrend: TrendFlat,
			LearnVar: "IOB", LearnOp: stl.OpGT, Default: 2.0, Lo: iobLo, Hi: iobHi},
		{ID: 9, Hazard: trace.HazardH2, Action: trace.ActionStop,
			BGSide: BGAbove, BGTrend: TrendAny, IOBTrend: TrendAny,
			LearnVar: "IOB", LearnOp: stl.OpLT, Default: 0.5, Lo: iobLo, Hi: iobHi},
		{ID: 10, Hazard: trace.HazardH1, Action: trace.ActionStop, Required: true,
			BGSide: BGAny, BGTrend: TrendAny, IOBTrend: TrendAny,
			LearnVar: "BG", LearnOp: stl.OpLT, Default: 70, Lo: 40, Hi: 110,
			HarvestLookback: 6, HarvestHazardOnly: true, HarvestTrim: 0.2},
		{ID: 11, Hazard: trace.HazardH2, Action: trace.ActionKeep,
			BGSide: BGAbove, BGTrend: TrendUp, IOBTrend: TrendDownOrFlat,
			LearnVar: "IOB", LearnOp: stl.OpLT, Default: 0.5, Lo: iobLo, Hi: iobHi},
		{ID: 12, Hazard: trace.HazardH1, Action: trace.ActionKeep,
			BGSide: BGBelow, BGTrend: TrendDown, IOBTrend: TrendUpOrFlat,
			LearnVar: "IOB", LearnOp: stl.OpGT, Default: 2.0, Lo: iobLo, Hi: iobHi},
	}
}

// Thresholds maps rule ID to a learned β value.
type Thresholds map[int]float64

// Defaults returns the CAWOT thresholds of the rule set.
func Defaults(rules []Rule) Thresholds {
	th := make(Thresholds, len(rules))
	for _, r := range rules {
		th[r.ID] = r.Default
	}
	return th
}

// StateFromSample converts a trace sample (using the sensed CGM as the
// observable glucose, per the monitor's wrapper position) to a rule
// evaluation state.
func StateFromSample(s *trace.Sample) State {
	return State{
		BG:       s.CGM,
		BGPrime:  s.BGPrime,
		IOB:      s.IOB,
		IOBPrime: s.IOBPrime,
		Action:   s.Action,
	}
}
