// Package scs encodes the paper's Safety Context Specification: the
// twelve Table I rules that describe in which multi-dimensional system
// context  µ(x) = (BG, BG', IOB, IOB')  each control action u1..u4 is
// an Unsafe Control Action leading to hazard H1 or H2.
//
// Each rule carries one learnable boundary threshold β (on IOB for
// rules 1-9, 11, 12; on BG for rule 10) that the stllearn package
// refines from fault-injected traces. Rules render to STL formulas of
// the Eq. 1 shape
//
//	G[t0,te]( context(µ(x)) ∧ learnable ⇒ ¬u )
//
// and are evaluated online against per-cycle states.
//
// # Streaming evaluation and its invariants
//
// Two incremental evaluators render rule sets through internal/stl's
// streaming engines, and they must agree exactly:
//
//   - StreamSet: one session's rules as a hash-consed stl.StreamGroup.
//     Shared context atoms and windows evaluate once per cycle no
//     matter how many rules contain them, and the structurally fixed
//     consequent (the u == action equality) folds inline, so a single
//     Push yields satisfaction, the minimum STL body robustness, the
//     signed rule margin with arg-min attribution, and the predicted
//     hazard class — the StreamVerdict that the streaming CAWT monitor,
//     Algorithm 1 margin scaling, and fleet telemetry all read from
//     (the one-evaluation invariant: nothing evaluates the rules twice
//     for the same cycle). State is O(window), never session length.
//   - BatchStreamSet: the same rule set across a whole fleet shard of
//     session lanes in one struct-of-arrays push. The batching
//     invariant: per-lane verdicts and fired-rule sets are bit-identical
//     to a per-session StreamSet — margins, arg-min rules, and hazards
//     included — enforced by TestBatchStreamSetMatchesPerSession over
//     randomized boundary-hugging states, staggered lane resets, and
//     randomized thresholds. The verdict fold per lane is the exact
//     same arithmetic in the exact same order; only the loop over
//     sessions moved inside the node DAG.
//
//fleetvet:deterministic
package scs
