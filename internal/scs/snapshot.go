// Snapshot/restore of streaming rule-set state. A StreamSet and a
// BatchStreamSet delegate entirely to their stl groups: the rule fold
// and fired scratch are recomputed on every push, so the group's
// operator state (plus its sample cursor) is the whole checkpoint. The
// bytes are identical between the scalar and batched engines, which is
// what lets a session snapshotted from a batched telemetry lane restore
// into a per-session StreamSet and vice versa.

package scs

import "repro/internal/snapshot"

var (
	_ snapshot.Snapshotter     = (*StreamSet)(nil)
	_ snapshot.LaneSnapshotter = (*BatchStreamSet)(nil)
)

// SnapshotState implements snapshot.Snapshotter.
func (ss *StreamSet) SnapshotState(enc *snapshot.Encoder) {
	ss.group.SnapshotState(enc)
}

// RestoreState implements snapshot.Snapshotter. The set must have been
// built from the same rules and thresholds as the one that produced the
// bytes.
func (ss *StreamSet) RestoreState(dec *snapshot.Decoder) error {
	if err := ss.group.RestoreState(dec); err != nil {
		return err
	}
	ss.n = ss.group.Len()
	ss.fired = ss.fired[:0]
	return nil
}

// SnapshotLane implements snapshot.LaneSnapshotter: one lane's rule
// streams, byte-identical to the scalar SnapshotState of an identically
// built StreamSet at the same point.
func (bs *BatchStreamSet) SnapshotLane(lane int, enc *snapshot.Encoder) {
	bs.group.SnapshotLane(lane, enc)
}

// RestoreLane implements snapshot.LaneSnapshotter, accepting bytes from
// SnapshotLane or from a scalar StreamSet's SnapshotState.
func (bs *BatchStreamSet) RestoreLane(lane int, dec *snapshot.Decoder) error {
	if err := bs.group.RestoreLane(lane, dec); err != nil {
		return err
	}
	// bs.n gates Add-after-push and engine rebuild checks; keep it ahead
	// of the restored lane's cursor without ever rewinding it.
	if n := bs.group.LaneLen(lane); n > bs.n {
		bs.n = n
	}
	return nil
}
